package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/serve"
	"cpa/internal/simulate"
)

// shapeKind selects how a tenant's answer stream is ordered and mutated.
type shapeKind int

const (
	shapeShuffle   shapeKind = iota // uniform random arrival order
	shapeFlood                      // clean phase, then a spammer flood phase
	shapeSleeper                    // honest workers turn adversarial mid-stream
	shapeHot                        // hot items' answers arrive early and densely
	shapeStraggler                  // a worker cohort reconnects at the end
)

// ArrivalKind selects the traffic model that paces ingestion requests.
type ArrivalKind int

const (
	// ArrivalSteady spaces requests evenly at the scenario rate.
	ArrivalSteady ArrivalKind = iota
	// ArrivalPoisson draws exponential inter-request gaps (Poisson process).
	ArrivalPoisson
	// ArrivalBursty sends tight request bursts separated by idle gaps.
	ArrivalBursty
	// ArrivalTrickle sends tiny sub-batch chunks at a slow steady rate,
	// forcing the fitter onto its BatchWait partial-batch path.
	ArrivalTrickle
)

// String names the arrival model for reports.
func (a ArrivalKind) String() string {
	switch a {
	case ArrivalSteady:
		return "steady"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	case ArrivalTrickle:
		return "trickle"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(a))
	}
}

// Scenario is one named workload profile: a crowd model (who answers and
// how reliably, via internal/simulate), a stream shape (what order answers
// arrive in and how they mutate mid-stream), a traffic model (how arrivals
// are paced and chunked), and the serving topology (tenants, churn, queue
// limits, chaos kill points).
type Scenario struct {
	Name        string
	Description string

	// Profile names the Table 3 dataset shape driving the simulator.
	Profile string
	// Mix overrides the profile's worker population (nil = profile default).
	Mix *simulate.Mix
	// DependencyFraction injects label co-occurrence back into answers
	// (simulate.InjectDependency), producing partial-agreement-heavy sets.
	DependencyFraction float64

	shape shapeKind
	// SpamRatio is the injected spammer share for shapeFlood.
	SpamRatio float64
	// SleeperFraction is the share of honest workers that turn adversarial
	// at the phase boundary (shapeSleeper).
	SleeperFraction float64
	// SleeperRandomSpam selects the random-spammer archetype for turned
	// workers (a fresh uniform-random label set per answer) instead of the
	// default uniform-spammer one (a fixed set pasted onto every task).
	SleeperRandomSpam bool
	// HotFraction is the share of items treated as hot (shapeHot).
	HotFraction float64
	// StragglerFraction is the worker share whose answers arrive only in
	// the reconnect phase (shapeStraggler).
	StragglerFraction float64

	Arrival ArrivalKind
	// Rate is the notional arrival rate in answers/second for the traffic
	// model (virtual unless a RealClock is installed). 0 = 4000.
	Rate float64
	// Chunk is the number of answers per ingestion request. 0 = 64.
	Chunk int

	// Tenants is the number of concurrent jobs (0/1 = single tenant).
	Tenants int
	// Churn staggers tenant lifecycles: the last tenant is created only at
	// the final phase and the middle tenant is deleted after the middle
	// phase (requires Tenants >= 3 and 3 phases).
	Churn bool

	// ChaosKills is how many random kill -9 points to inject (in-process
	// targets only).
	ChaosKills int

	// Serving knobs (0 = serve defaults; QueueLimit small values exercise
	// the 429 backpressure path).
	QueueLimit int
	BatchSize  int
	BatchWait  time.Duration
	SaveEvery  int

	// Retention knobs for long-lived jobs. ReliabilityHalfLife enables
	// time-decayed worker reliability (in fit rounds); AnswerWindow bounds
	// the model's retained answer storage; TruncateJournal/TruncateMin turn
	// on checkpoint-anchored journal compaction in the server.
	ReliabilityHalfLife float64
	AnswerWindow        int
	TruncateJournal     bool
	TruncateMin         int64

	// Phases names the stream segments; per-phase P/R, drift and latency
	// are reported at each boundary after a quiesce.
	Phases []string

	// HotReads polls hot items' /items/{i} endpoints while streaming.
	HotReads bool
}

// scenarios is the library, in presentation order.
var scenarios = []Scenario{
	{
		Name:        "uniform",
		Description: "homogeneous honest crowd, steady arrivals — the control scenario",
		Profile:     "topic",
		Mix:         &simulate.Mix{Normal: 1},
		shape:       shapeShuffle,
		Arrival:     ArrivalSteady,
		Phases:      []string{"steady", "late"},
	},
	{
		Name:        "spammer-flood",
		Description: "hostile Appendix A population, then an injected spammer flood on top",
		Profile:     "topic",
		Mix:         mixPtr(simulate.AppendixAMix()),
		shape:       shapeFlood,
		SpamRatio:   0.35,
		Arrival:     ArrivalSteady,
		Phases:      []string{"clean", "flood"},
	},
	{
		Name:            "sleeper",
		Description:     "half the honest workers turn uniform-spammer adversarial mid-stream",
		Profile:         "topic",
		shape:           shapeSleeper,
		SleeperFraction: 0.5,
		Arrival:         ArrivalSteady,
		Phases:          []string{"honest", "adversarial"},
	},
	{
		Name:        "community-skew",
		Description: "bimodal reliability communities with skewed participation (image profile)",
		Profile:     "image",
		Mix:         &simulate.Mix{Reliable: 0.45, Sloppy: 0.10, RandomSpammer: 0.45},
		shape:       shapeShuffle,
		Arrival:     ArrivalSteady,
		Phases:      []string{"early", "late"},
	},
	{
		Name:        "hot-item",
		Description: "10% hot items answered early and densely, with hot-item read pressure",
		Profile:     "image",
		shape:       shapeHot,
		HotFraction: 0.10,
		Arrival:     ArrivalSteady,
		Phases:      []string{"ramp", "tail"},
		HotReads:    true,
	},
	{
		Name:        "bursty",
		Description: "Poisson bursts against a small ingestion queue — the 429 backpressure regime",
		Profile:     "topic",
		shape:       shapeShuffle,
		Arrival:     ArrivalBursty,
		QueueLimit:  80,
		Chunk:       48,
		Phases:      []string{"bursts", "drain"},
	},
	{
		Name:        "churn",
		Description: "multi-tenant lifecycle churn: staggered job create and delete mid-traffic",
		Profile:     "topic",
		shape:       shapeShuffle,
		Arrival:     ArrivalSteady,
		Tenants:     3,
		Churn:       true,
		Phases:      []string{"warmup", "churn", "steady"},
	},
	{
		Name:               "partial-heavy",
		Description:        "weak-correlation aspect profile with dependency-injected, overlap-heavy answer sets",
		Profile:            "aspect",
		DependencyFraction: 0.9,
		shape:              shapeShuffle,
		Arrival:            ArrivalSteady,
		Phases:             []string{"early", "late"},
	},
	{
		Name:              "straggler",
		Description:       "a quarter of the workers disconnect and replay their entire backlog at the end",
		Profile:           "topic",
		shape:             shapeStraggler,
		StragglerFraction: 0.25,
		Arrival:           ArrivalSteady,
		Phases:            []string{"mainline", "reconnect"},
	},
	{
		Name:        "chaos-kill",
		Description: "random kill -9 points mid-stream; recovery must be bit-for-bit",
		Profile:     "topic",
		shape:       shapeShuffle,
		Arrival:     ArrivalSteady,
		ChaosKills:  2,
		SaveEvery:   6,
		Phases:      []string{"pre", "post"},
	},
	{
		Name:        "trickle",
		Description: "sub-batch trickle arrivals exercising the BatchWait partial-batch path",
		Profile:     "topic",
		shape:       shapeShuffle,
		Arrival:     ArrivalTrickle,
		Chunk:       7,
		BatchWait:   4 * time.Millisecond,
		Phases:      []string{"trickle", "tail"},
	},
	{
		Name:                "sleeper-decay",
		Description:         "the sleeper turn with time-decayed reliability: old honest evidence must fade",
		Profile:             "topic",
		shape:               shapeSleeper,
		SleeperFraction:     0.25,
		SleeperRandomSpam:   true,
		Arrival:             ArrivalSteady,
		Rate:                0.002, // answers/second: the turn plays out over virtual weeks
		ReliabilityHalfLife: 4,
		Phases:              []string{"honest", "adversarial"},
	},
	{
		Name:            "retention-soak",
		Description:     "months-long virtual soak with journal truncation, answer windowing and mid-run kills",
		Profile:         "topic",
		shape:           shapeShuffle,
		Arrival:         ArrivalSteady,
		Rate:            0.002, // answers/second: a modest stream spans virtual months
		ChaosKills:      2,
		SaveEvery:       2,
		AnswerWindow:    256,
		TruncateJournal: true,
		TruncateMin:     4096,
		Phases:          []string{"month1", "month2", "month3"},
	},
}

func mixPtr(m simulate.Mix) *simulate.Mix { return &m }

// Scenarios returns the library in presentation order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the library's names in order.
func ScenarioNames() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.Name
	}
	return out
}

// GetScenario looks a scenario up by name.
func GetScenario(name string) (Scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, ScenarioNames())
}

func (sc Scenario) chunk() int {
	if sc.Chunk > 0 {
		return sc.Chunk
	}
	return 64
}

func (sc Scenario) batchSize() int {
	if sc.BatchSize > 0 {
		return sc.BatchSize
	}
	return 64
}

func (sc Scenario) batchWait() time.Duration {
	if sc.BatchWait > 0 {
		return sc.BatchWait
	}
	return 10 * time.Millisecond
}

func (sc Scenario) saveEvery() int {
	if sc.SaveEvery > 0 {
		return sc.SaveEvery
	}
	return 8
}

func (sc Scenario) rate() float64 {
	if sc.Rate > 0 {
		return sc.Rate
	}
	return 4000
}

// ---------------------------------------------------------------------------
// Workload plan
// ---------------------------------------------------------------------------

// tenantPlan is one job's materialised workload: the evaluation dataset,
// the send-ordered answer stream, and the phase layout.
type tenantPlan struct {
	id      string
	profile string
	ds      *answers.Dataset // dims + evaluation truth
	stream  []answers.Answer // answers in send order (possibly mutated)
	// cuts[p] is the stream offset that must be sent by the end of phase p
	// (len == number of phases; 0 before createAt, len(stream) after the
	// tenant's last active phase).
	cuts []int
	// createAt is the phase at whose start the job is created; deleteAt is
	// the phase at whose end it is deleted (-1 = kept).
	createAt, deleteAt int
	// hotItems lists the read-pressure targets (shapeHot).
	hotItems []int
	// turned lists the sleeper workers flipped adversarial at the phase
	// boundary (shapeSleeper) — the ground truth the decay detection test
	// checks reliability estimates against.
	turned []int
	spec   serve.JobSpec
}

// plan is a fully materialised scenario run: tenants, phases, kill points.
type plan struct {
	sc      Scenario
	scale   float64
	seed    int64
	tenants []*tenantPlan
	// kills holds global acked-answer counts at which to hard-kill the
	// server (sorted ascending).
	kills []int
	total int
}

// buildPlan materialises a scenario deterministically under (scale, seed).
func buildPlan(sc Scenario, scale float64, seed int64) (*plan, error) {
	if len(sc.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q has no phases", sc.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	nT := sc.Tenants
	if nT < 1 {
		nT = 1
	}
	p := &plan{sc: sc, scale: scale, seed: seed}
	for ti := 0; ti < nT; ti++ {
		tseed := rng.Int63()
		tp, err := buildTenant(sc, scale, tseed, ti, nT)
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant %d: %w", ti, err)
		}
		p.tenants = append(p.tenants, tp)
		p.total += len(tp.stream)
	}
	if sc.ChaosKills > 0 {
		seen := map[int]bool{}
		for len(p.kills) < sc.ChaosKills {
			at := int(float64(p.total) * (0.15 + 0.70*rng.Float64()))
			if at > 0 && !seen[at] {
				seen[at] = true
				p.kills = append(p.kills, at)
			}
		}
		sort.Ints(p.kills)
	}
	return p, nil
}

// buildTenant generates one tenant's dataset and shapes its stream.
func buildTenant(sc Scenario, scale float64, tseed int64, ti, nT int) (*tenantPlan, error) {
	prof, err := datasets.Get(sc.Profile)
	if err != nil {
		return nil, err
	}
	cfg, err := prof.Config(scale, tseed)
	if err != nil {
		return nil, err
	}
	if sc.Mix != nil {
		cfg.Mix = *sc.Mix
	}
	ds, meta, err := simulate.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(tseed + 1))
	if sc.DependencyFraction > 0 {
		if ds, err = simulate.InjectDependency(ds, sc.DependencyFraction, rng); err != nil {
			return nil, err
		}
	}

	tp := &tenantPlan{
		id:       fmt.Sprintf("%s-t%d", sc.Name, ti),
		profile:  sc.Profile,
		createAt: 0,
		deleteAt: -1,
	}
	nPhases := len(sc.Phases)
	if sc.Churn {
		// t0 lives the whole run; the middle tenant dies after the middle
		// phase; the last tenant is born at the final phase.
		switch {
		case ti == nT-1:
			tp.createAt = nPhases - 1
		case ti == nT/2:
			tp.deleteAt = nPhases - 2
		}
	}

	switch sc.shape {
	case shapeFlood:
		flooded, err := simulate.InjectSpammers(ds, sc.SpamRatio, rng)
		if err != nil {
			return nil, err
		}
		base := len(ds.Answers())
		ds = flooded
		all := ds.Answers()
		tp.stream = append(shuffled(all[:base], rng), shuffled(all[base:], rng)...)
		tp.cuts = []int{base, len(tp.stream)}
	case shapeSleeper:
		tp.stream = shuffled(ds.Answers(), rng)
		tp.cuts = evenCuts(len(tp.stream), tp.createAt, tp.deleteAt, nPhases)
		tp.turned = flipSleepers(tp.stream, tp.cuts[0], meta, sc.SleeperFraction, rng, ds.NumLabels, sc.SleeperRandomSpam)
	case shapeHot:
		tp.stream, tp.hotItems = hotOrder(ds, sc.HotFraction, rng)
		tp.cuts = evenCuts(len(tp.stream), tp.createAt, tp.deleteAt, nPhases)
	case shapeStraggler:
		tp.stream, tp.cuts = stragglerOrder(ds, sc.StragglerFraction, rng)
	default:
		tp.stream = shuffled(ds.Answers(), rng)
		tp.cuts = evenCuts(len(tp.stream), tp.createAt, tp.deleteAt, nPhases)
	}
	if len(tp.cuts) != nPhases {
		return nil, fmt.Errorf("shape produced %d cuts for %d phases", len(tp.cuts), nPhases)
	}

	tp.ds = ds
	tp.spec = serve.JobSpec{
		ID: tp.id, Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{
			Seed: tseed, BatchSize: sc.batchSize(), Parallelism: 2,
			ReliabilityHalfLife: sc.ReliabilityHalfLife,
			AnswerWindow:        sc.AnswerWindow,
		},
	}
	return tp, nil
}

// shuffled returns a seed-determined permutation of the answers.
func shuffled(all []answers.Answer, rng *rand.Rand) []answers.Answer {
	out := make([]answers.Answer, len(all))
	for i, pi := range rng.Perm(len(all)) {
		out[i] = all[pi]
	}
	return out
}

// evenCuts splits n answers evenly across the tenant's active phase span
// [createAt, deleteAt] (deleteAt -1 = last phase), padding inactive phases
// with 0 / n so every cuts slice spans all phases.
func evenCuts(n, createAt, deleteAt, nPhases int) []int {
	last := deleteAt
	if last < 0 {
		last = nPhases - 1
	}
	active := last - createAt + 1
	cuts := make([]int, nPhases)
	for p := 0; p < nPhases; p++ {
		switch {
		case p < createAt:
			cuts[p] = 0
		case p > last:
			cuts[p] = n
		default:
			cuts[p] = n * (p - createAt + 1) / active
		}
	}
	return cuts
}

// flipSleepers replaces the post-boundary answers of a fraction of honest
// workers with spam — the sleeper-cell crowd of the sleeper scenarios. By
// default each turned worker pastes a fixed 1–2 label set onto every task
// (the uniform-spammer archetype, §2.1's u3); with randomSpam they draw a
// fresh uniform-random set per answer (the random-spammer archetype).
// Returns the sorted ids of the turned workers.
func flipSleepers(stream []answers.Answer, boundary int, meta *simulate.Metadata, fraction float64, rng *rand.Rand, numLabels int, randomSpam bool) []int {
	var honest []int
	for u, wt := range meta.WorkerTypes {
		if !wt.IsSpammer() {
			honest = append(honest, u)
		}
	}
	n := int(math.Round(fraction * float64(len(honest))))
	spamSet := make(map[int][]int, n)
	turned := make([]int, 0, n)
	for _, k := range rng.Perm(len(honest))[:n] {
		u := honest[k]
		spam := []int{rng.Intn(numLabels)}
		if rng.Float64() < 0.5 && numLabels > 1 {
			spam = append(spam, rng.Intn(numLabels))
		}
		spamSet[u] = spam
		turned = append(turned, u)
	}
	for i := boundary; i < len(stream); i++ {
		spam, ok := spamSet[stream[i].Worker]
		if !ok {
			continue
		}
		if randomSpam {
			spam = []int{rng.Intn(numLabels)}
			if rng.Float64() < 0.5 && numLabels > 1 {
				spam = append(spam, rng.Intn(numLabels))
			}
		}
		stream[i].Labels = labelset.FromSlice(spam)
	}
	sort.Ints(turned)
	return turned
}

// hotOrder biases the arrival order so hot items' answers land early and
// densely (Efraimidis–Spirakis weighted ordering), and returns the hot item
// ids for read pressure.
func hotOrder(ds *answers.Dataset, hotFraction float64, rng *rand.Rand) ([]answers.Answer, []int) {
	nHot := int(math.Max(1, math.Round(hotFraction*float64(ds.NumItems))))
	hot := make(map[int]bool, nHot)
	hotItems := make([]int, 0, nHot)
	for _, i := range rng.Perm(ds.NumItems)[:nHot] {
		hot[i] = true
		hotItems = append(hotItems, i)
	}
	sort.Ints(hotItems)
	all := ds.Answers()
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, len(all))
	for idx, a := range all {
		w := 1.0
		if hot[a.Item] {
			w = 8.0
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		keys[idx] = keyed{idx: idx, key: math.Pow(u, 1/w)}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := make([]answers.Answer, len(all))
	for i, k := range keys {
		out[i] = all[k.idx]
	}
	return out, hotItems
}

// stragglerOrder withholds a worker cohort's answers from the mainline and
// delivers them as one reconnect burst at the end.
func stragglerOrder(ds *answers.Dataset, fraction float64, rng *rand.Rand) ([]answers.Answer, []int) {
	n := int(math.Round(fraction * float64(ds.NumWorkers)))
	straggler := make(map[int]bool, n)
	for _, u := range rng.Perm(ds.NumWorkers)[:n] {
		straggler[u] = true
	}
	var mainline, tail []answers.Answer
	for _, a := range ds.Answers() {
		if straggler[a.Worker] {
			tail = append(tail, a)
		} else {
			mainline = append(mainline, a)
		}
	}
	mainline = shuffled(mainline, rng)
	tail = shuffled(tail, rng)
	stream := append(mainline, tail...)
	return stream, []int{len(mainline), len(stream)}
}
