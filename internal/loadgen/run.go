package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
	"cpa/internal/serve"
)

// stalenessBound is the fit-round gap between the fitter and the published
// snapshot beyond which a staleness sample counts as a violation. The
// publisher runs once per round, so the steady-state gap is 0–2; the bound
// is generous because a descheduled sampler can observe several rounds of
// lag without any server defect. staleStrikes consecutive violations fail
// the invariant — that shape catches the real bug class (a publisher that
// stops running, letting the gap grow with every round) without flaking on
// scheduler noise.
const (
	stalenessBound = 16
	staleStrikes   = 3
	sampleEvery    = 8 // staleness/read sample cadence, in ingest requests
)

// quiesceTimeout bounds every wait-for-drain; hitting it is a harness
// error, not an invariant failure.
const quiesceTimeout = 120 * time.Second

// Run executes one scenario against a server and returns its report.
// Invariant failures are data (Report.Invariants / Report.Failed()); an
// error return means the harness itself could not complete the run.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sc, err := GetScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if sc.ChaosKills > 0 && cfg.BaseURL != "" {
		return nil, fmt.Errorf("loadgen: scenario %q injects kill -9 chaos and requires the in-process target", sc.Name)
	}
	pl, err := buildPlan(sc, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:     cfg,
		sc:      sc,
		pl:      pl,
		traffic: newTrafficModel(sc, cfg.Seed+7919),
		client:  &http.Client{Timeout: 60 * time.Second},
		start:   time.Now(),
	}
	if err := r.openTarget(); err != nil {
		return nil, err
	}
	defer r.closeTarget()
	for _, tp := range pl.tenants {
		r.tenants = append(r.tenants, &tenantState{tenantPlan: tp, prevLabels: map[int]string{}})
	}

	r.report = &Report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Scenario:     sc.Name,
		Description:  sc.Description,
		Scale:        cfg.Scale,
		Seed:         cfg.Seed,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Target:       r.targetName(),
		TotalAnswers: pl.total,
		DataDir:      r.dataDir,
	}

	r.startReaders()
	runErr := func() error {
		for pi := range sc.Phases {
			if err := r.runPhase(pi); err != nil {
				return fmt.Errorf("loadgen: phase %q: %w", sc.Phases[pi], err)
			}
		}
		return nil
	}()
	r.stopReaders()
	if runErr != nil {
		return nil, runErr
	}
	r.finalInvariants()

	r.report.Requests = r.requests.Load()
	r.report.Rejected429 = r.rejected429.Load()
	r.report.ReadErrors = r.readErrors.Load()
	r.report.DurationSec = time.Since(r.start).Seconds()
	r.report.FinalSnapshots = map[string]*serve.Snapshot{}
	for _, ts := range r.tenants {
		tr := TenantReport{
			ID: ts.id, Profile: ts.profile,
			Items: ts.ds.NumItems, Workers: ts.ds.NumWorkers, Labels: ts.ds.NumLabels,
			Answers: len(ts.stream), Deleted: ts.deleted,
			Spec: ts.spec, JournalPath: ts.journalPath(r),
		}
		r.report.Tenants = append(r.report.Tenants, tr)
		if ts.finalSnap != nil {
			r.report.FinalSnapshots[ts.id] = ts.finalSnap
		}
	}
	return r.report, nil
}

// tenantState is a tenant's runtime bookkeeping on top of its plan.
type tenantState struct {
	*tenantPlan
	created bool
	deleted bool
	// acked holds every answer the server acked, in ack order.
	acked []answers.Answer
	// sends counts ingestion requests (sampling cadence).
	sends int64
	// prevLabels is the drift baseline: item -> rendered label set at the
	// previous phase boundary.
	prevLabels map[int]string
	// staleness bookkeeping.
	maxStale     int
	staleStreak  int
	staleFailure string
	finalSnap    *serve.Snapshot
	lastJobError string
}

func (ts *tenantState) journalPath(r *runner) string {
	if r.dataDir == "" {
		return ""
	}
	return serve.JournalPath(r.dataDir, ts.id)
}

type runner struct {
	cfg     Config
	sc      Scenario
	pl      *plan
	tenants []*tenantState
	traffic *trafficModel
	client  *http.Client
	start   time.Time
	report  *Report

	// In-process target state; nil fields when targeting an external URL.
	dataDir    string
	ownDataDir bool
	reg        *serve.Registry
	srv        *httptest.Server
	baseURL    atomic.Value // string; swapped across chaos restarts

	ingest hist
	reads  hist
	// pubMark is the cumulative publish-latency baseline at the current
	// phase's start, summed over tenants (diffed at the phase boundary).
	pubMark pubTotals

	requests    atomic.Int64
	rejected429 atomic.Int64
	readErrors  atomic.Int64
	monoViol    atomic.Int64

	readersStop chan struct{}
	readersWG   sync.WaitGroup

	ackedTotal int
	killIdx    int
}

// ---------------------------------------------------------------------------
// Target lifecycle
// ---------------------------------------------------------------------------

func (r *runner) inProcess() bool { return r.cfg.BaseURL == "" }

func (r *runner) targetName() string {
	if r.inProcess() {
		return "in-process"
	}
	return r.cfg.BaseURL
}

func (r *runner) base() string { return r.baseURL.Load().(string) }

func (r *runner) serveConfig() serve.Config {
	return serve.Config{
		Dir:             r.dataDir,
		QueueLimit:      r.sc.QueueLimit,
		SaveEvery:       r.sc.saveEvery(),
		BatchWait:       r.sc.batchWait(),
		TruncateJournal: r.sc.TruncateJournal,
		TruncateMin:     r.sc.TruncateMin,
	}
}

func (r *runner) openTarget() error {
	if !r.inProcess() {
		r.baseURL.Store(strings.TrimRight(r.cfg.BaseURL, "/"))
		return nil
	}
	r.dataDir = r.cfg.DataDir
	if r.dataDir == "" {
		dir, err := os.MkdirTemp("", "cpaload-*")
		if err != nil {
			return err
		}
		r.dataDir, r.ownDataDir = dir, true
	}
	reg, err := serve.Open(r.serveConfig())
	if err != nil {
		return err
	}
	r.reg = reg
	r.srv = httptest.NewServer(serve.NewServer(reg))
	r.baseURL.Store(r.srv.URL)
	return nil
}

func (r *runner) closeTarget() {
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
	}
	if r.reg != nil {
		r.reg.Close()
		r.reg = nil
	}
	if r.ownDataDir && r.dataDir != "" {
		os.RemoveAll(r.dataDir)
	}
}

// crashRestart hard-kills the in-process server (kill -9 semantics),
// verifies the crash-recovery-exact invariant against the journals, and
// restarts a fresh registry over the same data directory.
func (r *runner) crashRestart(phase string) error {
	r.cfg.Logf("chaos: kill -9 at %d acked answers", r.ackedTotal)
	r.reg.CrashAll()
	r.srv.Close()

	// The pre-crash snapshots are still reachable through the dead
	// registry's job handles; each must be bit-for-bit reconstructible
	// from its journal alone.
	for _, ts := range r.tenants {
		if !ts.created || ts.deleted {
			continue
		}
		job, ok := r.reg.Get(ts.id)
		if !ok {
			return fmt.Errorf("job %q missing from crashed registry", ts.id)
		}
		pre := job.Snapshot()
		r.addInvariant("crash-recovery-exact", ts.id,
			CheckReplay(ts.journalPath(r), ts.spec, pre),
			fmt.Sprintf("kill at %d acked answers", r.ackedTotal))
	}

	reg, err := serve.Open(r.serveConfig())
	if err != nil {
		return fmt.Errorf("reopening after chaos kill: %w", err)
	}
	r.reg = reg
	r.srv = httptest.NewServer(serve.NewServer(reg))
	r.baseURL.Store(r.srv.URL)
	r.report.Kills = append(r.report.Kills, KillEvent{
		AtAnswers: r.ackedTotal, Phase: phase, RecoveredJobs: len(reg.Jobs()),
	})
	return nil
}

// ---------------------------------------------------------------------------
// Phase loop
// ---------------------------------------------------------------------------

func (r *runner) runPhase(pi int) error {
	phase := r.sc.Phases[pi]
	for _, ts := range r.tenants {
		if ts.createAt == pi && !ts.created {
			if err := r.createJob(ts); err != nil {
				return err
			}
		}
	}

	phaseStart := time.Now()
	reqBefore := r.requests.Load()
	r.pubMark = r.collectPublishTotals()
	sent := 0
	for {
		progressed := false
		for _, ts := range r.tenants {
			if !ts.created || ts.deleted || len(ts.acked) >= ts.cuts[pi] {
				continue
			}
			n := r.sc.chunk()
			if rem := ts.cuts[pi] - len(ts.acked); n > rem {
				n = rem
			}
			chunk := ts.stream[len(ts.acked) : len(ts.acked)+n]
			if err := r.sendChunk(ts, chunk); err != nil {
				return err
			}
			ts.acked = append(ts.acked, chunk...)
			r.ackedTotal += n
			sent += n
			progressed = true
			if err := r.maybeKill(phase); err != nil {
				return err
			}
			if ts.sends%sampleEvery == 0 {
				if err := r.sample(ts); err != nil {
					return err
				}
			}
			r.cfg.Clock.Sleep(r.traffic.gap())
		}
		if !progressed {
			break
		}
	}

	// Quiesce every active tenant and record its phase-boundary quality.
	ps := PhaseStats{Name: phase, Answers: sent}
	for _, ts := range r.tenants {
		if !ts.created || ts.deleted {
			continue
		}
		if err := r.quiesce(ts); err != nil {
			return err
		}
		pr, err := r.recordPR(ts)
		if err != nil {
			return err
		}
		ps.PR = append(ps.PR, pr)
	}
	ps.DurationSec = time.Since(phaseStart).Seconds()
	ps.Requests = r.requests.Load() - reqBefore
	if ps.DurationSec > 0 {
		ps.AnswersPerSec = float64(sent) / ps.DurationSec
	}
	ps.Ingest = r.ingest.resetSummary()
	ps.Reads = r.reads.resetSummary()
	ps.Publish = r.collectPublishTotals().since(r.pubMark)
	r.report.Phases = append(r.report.Phases, ps)
	r.cfg.Logf("phase %q: %d answers, %d requests, %.2fs", phase, sent, ps.Requests, ps.DurationSec)

	for _, ts := range r.tenants {
		if ts.deleteAt == pi && !ts.deleted {
			if err := r.deleteTenant(ts); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *runner) maybeKill(phase string) error {
	for r.killIdx < len(r.pl.kills) && r.ackedTotal >= r.pl.kills[r.killIdx] {
		r.killIdx++
		if err := r.crashRestart(phase); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

func (r *runner) createJob(ts *tenantState) error {
	body, err := json.Marshal(serve.CreateJobRequest{
		ID: ts.id, Items: ts.spec.Items, Workers: ts.spec.Workers, Labels: ts.spec.Labels,
		Model: ts.spec.Model,
	})
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.base()+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("creating job %q: status %d: %s (stale data dir or id collision on an external target?)",
			ts.id, resp.StatusCode, msg)
	}
	ts.created = true
	r.cfg.Logf("created job %s (%d items, %d workers, %d labels, %d answers planned)",
		ts.id, ts.spec.Items, ts.spec.Workers, ts.spec.Labels, len(ts.stream))
	return nil
}

// sendChunk posts one NDJSON ingestion request, retrying 429 backpressure
// rejections until accepted. Only the accepted attempt acks the chunk.
func (r *runner) sendChunk(ts *tenantState, chunk []answers.Answer) error {
	var body bytes.Buffer
	for _, a := range chunk {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			return err
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	payload := body.Bytes()
	url := r.base() + "/v1/jobs/" + ts.id + "/answers"
	deadline := time.Now().Add(quiesceTimeout)
	for {
		start := time.Now()
		resp, err := r.client.Post(url, "application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("ingesting into %s: %w", ts.id, err)
		}
		lat := time.Since(start)
		status := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch status {
		case http.StatusAccepted:
			r.ingest.observe(lat)
			r.requests.Add(1)
			ts.sends++
			return nil
		case http.StatusTooManyRequests:
			r.rejected429.Add(1)
			if time.Now().After(deadline) {
				return fmt.Errorf("ingesting into %s: backpressured past the %s deadline", ts.id, quiesceTimeout)
			}
			// Real sleep regardless of the pacing clock: the fitter needs
			// wall time to drain before a retry can succeed.
			time.Sleep(time.Millisecond)
		default:
			return fmt.Errorf("ingesting into %s: status %d", ts.id, status)
		}
	}
}

func (r *runner) getJSON(url string, v any) (int, error) {
	resp, err := r.client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s: %w", url, err)
	}
	return resp.StatusCode, nil
}

// pubTotals is a cumulative publish-latency counter snapshot summed across
// tenants, in the serve layer's log₂ bucket family.
type pubTotals struct {
	counts []int64
	n      int64
	sumNs  int64
	maxNs  int64
}

// since summarises the publish latencies accumulated between an earlier
// snapshot and this one. Chaos restarts reset the server-side counters, so
// negative diffs clamp to zero; the max carries the later snapshot's value
// (cumulative, i.e. run-wide so far).
func (t pubTotals) since(start pubTotals) HistSummary {
	counts := make([]int64, len(t.counts))
	copy(counts, t.counts)
	for b := range start.counts {
		if b < len(counts) {
			counts[b] -= start.counts[b]
		}
	}
	n := t.n - start.n
	sum := t.sumNs - start.sumNs
	if n < 0 {
		n = t.n
	}
	if sum < 0 {
		sum = t.sumNs
	}
	return summaryFromCounts(counts, n, time.Duration(sum), time.Duration(t.maxNs))
}

// collectPublishTotals sums every active tenant's cumulative publish
// histogram (exported in JobStats). Collection errors degrade to an empty
// snapshot: publish latency is reporting, never a reason to fail a run.
func (r *runner) collectPublishTotals() pubTotals {
	var t pubTotals
	for _, ts := range r.tenants {
		if !ts.created || ts.deleted {
			continue
		}
		var stats serve.JobStats
		status, err := r.getJSON(r.base()+"/v1/jobs/"+ts.id, &stats)
		if err != nil || status != http.StatusOK {
			continue
		}
		p := stats.Publish
		if len(t.counts) < len(p.Log2Buckets) {
			grown := make([]int64, len(p.Log2Buckets))
			copy(grown, t.counts)
			t.counts = grown
		}
		for b, c := range p.Log2Buckets {
			t.counts[b] += c
		}
		t.n += p.Count
		t.sumNs += p.SumNs
		if p.MaxNs > t.maxNs {
			t.maxNs = p.MaxNs
		}
	}
	return t
}

// sample probes the staleness invariant (and hot-item reads) mid-stream.
func (r *runner) sample(ts *tenantState) error {
	var stats serve.JobStats
	status, err := r.getJSON(r.base()+"/v1/jobs/"+ts.id, &stats)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("sampling job %s: status %d", ts.id, status)
	}
	if stats.Error != "" {
		ts.lastJobError = stats.Error
	}
	gap := int(stats.FitRounds) - stats.SnapshotRound
	if gap > ts.maxStale {
		ts.maxStale = gap
	}
	if gap > stalenessBound {
		ts.staleStreak++
		if ts.staleStreak >= staleStrikes && ts.staleFailure == "" {
			ts.staleFailure = fmt.Sprintf("snapshot lagged the fitter by %d rounds for %d consecutive samples", gap, ts.staleStreak)
		}
	} else {
		ts.staleStreak = 0
	}

	if r.sc.HotReads && len(ts.hotItems) > 0 {
		item := ts.hotItems[int(ts.sends/sampleEvery)%len(ts.hotItems)]
		start := time.Now()
		var out map[string]any
		if status, err := r.getJSON(fmt.Sprintf("%s/v1/jobs/%s/items/%d", r.base(), ts.id, item), &out); err != nil {
			return err
		} else if status != http.StatusOK {
			return fmt.Errorf("hot read of item %d: status %d", item, status)
		}
		r.reads.observe(time.Since(start))
	}
	return nil
}

// quiesce waits until the server has fitted and published everything acked
// for the tenant: fitted == ingested == acked and the snapshot round has
// caught the fit round exactly (the staleness invariant's equality point).
func (r *runner) quiesce(ts *tenantState) error {
	deadline := time.Now().Add(quiesceTimeout)
	for {
		var stats serve.JobStats
		status, err := r.getJSON(r.base()+"/v1/jobs/"+ts.id, &stats)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("quiescing job %s: status %d", ts.id, status)
		}
		if stats.Error != "" {
			ts.lastJobError = stats.Error
			return fmt.Errorf("job %s failed while quiescing: %s", ts.id, stats.Error)
		}
		if stats.IngestedAnswers == int64(len(ts.acked)) &&
			stats.FittedAnswers == int64(len(ts.acked)) &&
			stats.SnapshotRound == int(stats.FitRounds) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not quiesce: %d/%d fitted, snapshot round %d of %d",
				ts.id, stats.FittedAnswers, len(ts.acked), stats.SnapshotRound, stats.FitRounds)
		}
		time.Sleep(time.Millisecond)
	}
}

// recordPR fetches the served consensus and scores it against the
// simulator's ground truth, tracking per-item drift across phases.
func (r *runner) recordPR(ts *tenantState) (TenantPhasePR, error) {
	var snap serve.Snapshot
	status, err := r.getJSON(r.base()+"/v1/jobs/"+ts.id+"/consensus", &snap)
	if err != nil {
		return TenantPhasePR{}, err
	}
	if status != http.StatusOK {
		return TenantPhasePR{}, fmt.Errorf("reading consensus of %s: status %d", ts.id, status)
	}
	ts.finalSnap = &snap

	pred := make([]labelset.Set, ts.ds.NumItems)
	drift := 0
	for _, item := range snap.Consensus {
		if item.Item < 0 || item.Item >= ts.ds.NumItems {
			return TenantPhasePR{}, fmt.Errorf("consensus of %s names item %d outside [0,%d)", ts.id, item.Item, ts.ds.NumItems)
		}
		pred[item.Item] = labelset.FromSlice(item.Labels)
		key := fmt.Sprint(item.Labels)
		// Items never seen before baseline at the empty set, so the first
		// phase's drift counts items that gained labels, not every item.
		prev, seen := ts.prevLabels[item.Item]
		if !seen {
			prev = "[]"
		}
		if prev != key {
			drift++
		}
		ts.prevLabels[item.Item] = key
	}
	pr, err := metrics.Evaluate(ts.ds, pred)
	if err != nil {
		return TenantPhasePR{}, fmt.Errorf("evaluating %s: %w", ts.id, err)
	}
	return TenantPhasePR{
		Job: ts.id, Round: snap.Round, Answers: snap.Answers,
		Precision: pr.Precision, Recall: pr.Recall, F1: pr.F1(), DriftItems: drift,
	}, nil
}

// deleteTenant quiesces a tenant, pins its final snapshot, verifies the
// replay invariants on its (about to be retained) journal, and deletes the
// job over HTTP.
func (r *runner) deleteTenant(ts *tenantState) error {
	if err := r.quiesce(ts); err != nil {
		return err
	}
	if _, err := r.recordPR(ts); err != nil { // refresh finalSnap
		return err
	}
	r.replayInvariants(ts, "pre-delete")

	req, err := http.NewRequest(http.MethodDelete, r.base()+"/v1/jobs/"+ts.id, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("deleting job %s: status %d", ts.id, resp.StatusCode)
	}
	if status, _ := r.getJSON(r.base()+"/v1/jobs/"+ts.id, &serve.JobStats{}); status != http.StatusNotFound {
		return fmt.Errorf("deleted job %s still answers with status %d", ts.id, status)
	}
	ts.deleted = true
	r.cfg.Logf("deleted job %s after %d answers", ts.id, len(ts.acked))
	return nil
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

func (r *runner) addInvariant(name, job string, err error, passDetail string) {
	iv := InvariantResult{Name: name, Job: job, Status: StatusPass, Detail: passDetail}
	if err != nil {
		iv.Status = StatusFail
		iv.Detail = err.Error()
	}
	r.report.Invariants = append(r.report.Invariants, iv)
	if err != nil {
		r.cfg.Logf("INVARIANT FAIL %s[%s]: %v", name, job, err)
	}
}

func (r *runner) skipInvariant(name, job, why string) {
	r.report.Invariants = append(r.report.Invariants, InvariantResult{
		Name: name, Job: job, Status: StatusSkipped, Detail: why,
	})
}

// replayInvariants checks served-equals-replay and acked-answers-durable
// for one tenant against its journal (in-process targets only).
func (r *runner) replayInvariants(ts *tenantState, when string) {
	if !r.inProcess() {
		r.skipInvariant("served-equals-replay", ts.id, "external target: journal not reachable")
		r.skipInvariant("acked-answers-durable", ts.id, "external target: journal not reachable")
		return
	}
	path := ts.journalPath(r)
	r.addInvariant("served-equals-replay", ts.id,
		CheckReplay(path, ts.spec, ts.finalSnap),
		fmt.Sprintf("%s: %d rounds bit-for-bit", when, ts.finalSnap.Round))
	view, journaled, _, base, err := replayJournal(path, ts.spec)
	if err == nil {
		err = checkAckedDurable(journaled, ts.acked, base.Ans)
	}
	r.addInvariant("acked-answers-durable", ts.id, err,
		fmt.Sprintf("%s: %d acked answers durable in order (%d compacted behind the base)", when, len(ts.acked), base.Ans))
	r.retentionInvariants(ts, view, base, when)
}

// retentionInvariants checks the bounded-memory claims on scenarios that
// enable them: journal truncation must keep the on-disk file a strict
// fraction of the ever-growing global stream, and an answer window must
// keep the model's retained storage within its 2×window rebuild bound. The
// replayed view stands in for the server's model — served-equals-replay
// just proved them bit-identical.
func (r *runner) retentionInvariants(ts *tenantState, view *core.ConsensusView, base serve.JournalBase, when string) {
	if r.sc.TruncateJournal {
		var stats serve.JobStats
		status, err := r.getJSON(r.base()+"/v1/jobs/"+ts.id, &stats)
		if err == nil && status != http.StatusOK {
			err = fmt.Errorf("job stats: status %d", status)
		}
		if err == nil {
			switch {
			case base.Bytes == 0:
				err = fmt.Errorf("journal was never truncated (%d global bytes, file %d)", stats.JournalBytes, stats.JournalFileBytes)
			case stats.JournalFileBytes > stats.JournalBytes/2:
				err = fmt.Errorf("journal file holds %d of %d global bytes — not bounded", stats.JournalFileBytes, stats.JournalBytes)
			}
		}
		r.addInvariant("journal-bytes-bounded", ts.id, err,
			fmt.Sprintf("%s: file %d of %d global journal bytes (base %d)",
				when, stats.JournalFileBytes, stats.JournalBytes, base.Bytes))
	}
	if w := ts.spec.Model.AnswerWindow; w > 0 && view != nil {
		var err error
		if view.Stats.Retained > 2*w {
			err = fmt.Errorf("model retains %d answers, window bound is %d", view.Stats.Retained, 2*w)
		} else if view.Stats.Answers <= 2*w {
			err = fmt.Errorf("stream too short to exercise the window (%d answers for window %d)", view.Stats.Answers, w)
		}
		r.addInvariant("retained-answers-bounded", ts.id, err,
			fmt.Sprintf("%s: %d of %d stream answers retained (window %d)", when, view.Stats.Retained, view.Stats.Answers, w))
	}
}

// finalInvariants evaluates the per-tenant and global invariants after the
// last phase.
func (r *runner) finalInvariants() {
	for _, ts := range r.tenants {
		if !ts.created {
			continue
		}
		if !ts.deleted {
			r.replayInvariants(ts, "final")
		}
		var jobErr error
		if ts.lastJobError != "" {
			jobErr = fmt.Errorf("job reported failure: %s", ts.lastJobError)
		}
		r.addInvariant("no-job-failure", ts.id, jobErr, "fitter never failed")
		var staleErr error
		if ts.staleFailure != "" {
			staleErr = fmt.Errorf("%s", ts.staleFailure)
		}
		r.addInvariant("staleness-bounded", ts.id, staleErr,
			fmt.Sprintf("max observed lag %d rounds; exact catch-up at every quiesce", ts.maxStale))
		if ts.maxStale > r.report.MaxStaleness {
			r.report.MaxStaleness = ts.maxStale
		}
	}
	if r.cfg.Readers <= 0 {
		r.skipInvariant("snapshot-monotonic", r.tenants[0].id, "background readers disabled")
		return
	}
	var monoErr error
	if n := r.monoViol.Load(); n > 0 {
		monoErr = fmt.Errorf("readers observed %d snapshot regressions", n)
	}
	r.addInvariant("snapshot-monotonic", r.tenants[0].id, monoErr,
		"no reader ever saw round or answer count regress (restarts included)")
}

// ---------------------------------------------------------------------------
// Background readers
// ---------------------------------------------------------------------------

// startReaders launches goroutines that poll the primary tenant's consensus
// for the whole run: read-latency witnesses and monotonicity watchdogs.
// They tolerate connection errors (the chaos scenarios restart the server
// under them) but never tolerate a regressing snapshot.
func (r *runner) startReaders() {
	if r.cfg.Readers <= 0 {
		return
	}
	r.readersStop = make(chan struct{})
	primary := r.tenants[0].id
	for i := 0; i < r.cfg.Readers; i++ {
		r.readersWG.Add(1)
		go func() {
			defer r.readersWG.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			lastRound, lastAnswers := -1, -1
			for {
				select {
				case <-r.readersStop:
					return
				default:
				}
				start := time.Now()
				resp, err := client.Get(r.base() + "/v1/jobs/" + primary + "/consensus")
				if err != nil {
					r.readErrors.Add(1)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				var head struct {
					Round   int `json:"round"`
					Answers int `json:"answers"`
				}
				decodeErr := json.NewDecoder(resp.Body).Decode(&head)
				status := resp.StatusCode
				resp.Body.Close()
				if status == http.StatusOK && decodeErr == nil {
					r.reads.observe(time.Since(start))
					if head.Round < lastRound || head.Answers < lastAnswers {
						r.monoViol.Add(1)
					}
					lastRound, lastAnswers = head.Round, head.Answers
				} else if status != http.StatusNotFound {
					r.readErrors.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
}

func (r *runner) stopReaders() {
	if r.readersStop != nil {
		close(r.readersStop)
		r.readersWG.Wait()
		r.readersStop = nil
	}
}
