package mathx

import (
	"math/rand"
	"strconv"
	"testing"
)

// Micro-benchmarks for the dispatched kernels (ISSUE 6) at the lengths the
// inference loops actually see: tiny label-set rows (4, 16), typical score
// panels (64, 256), and the λ-cube walks (4096). Each benchmark runs once
// per registered backend so `go test -bench 'BenchmarkFlooredDot'` prints
// the scalar-vs-SIMD ratio directly; cpabench's `microkernels`
// pseudo-method reports the same shapes into the BENCH json envelope.

var benchLens = []int{4, 16, 64, 256, 4096}

func benchVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// forEachBackendB runs fn once per registered backend with that backend
// forced, restoring the active backend afterwards.
func forEachBackendB(b *testing.B, fn func(b *testing.B)) {
	restore := ActiveBackend()
	defer ForceBackend(restore)
	for _, name := range Backends() {
		b.Run(name, func(b *testing.B) {
			if err := ForceBackend(name); err != nil {
				b.Fatal(err)
			}
			fn(b)
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range benchLens {
		x := benchVec(n, 1)
		y := benchVec(n, 2)
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			forEachBackendB(b, func(b *testing.B) {
				b.SetBytes(int64(16 * n))
				for i := 0; i < b.N; i++ {
					Axpy(1.0009765625, x, y)
				}
			})
		})
	}
}

func BenchmarkFlooredDot(b *testing.B) {
	for _, n := range benchLens {
		w := benchVec(n, 3)
		x := benchVec(n, 4)
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			forEachBackendB(b, func(b *testing.B) {
				b.SetBytes(int64(16 * n))
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += FlooredDot(w, x, 0.0)
				}
				_ = sink
			})
		})
	}
}

func BenchmarkSum(b *testing.B) {
	for _, n := range benchLens {
		v := benchVec(n, 5)
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			forEachBackendB(b, func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += Sum(v)
				}
				_ = sink
			})
		})
	}
}

func BenchmarkDigammaRow(b *testing.B) {
	for _, n := range benchLens {
		// Dirichlet-posterior-typical positive arguments: the recurrence
		// runs a few masked iterations per lane, like the real λ walks.
		rng := rand.New(rand.NewSource(6))
		x := make([]float64, n)
		for i := range x {
			x[i] = 0.1 + 20*rng.Float64()
		}
		dst := make([]float64, n)
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			forEachBackendB(b, func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				for i := 0; i < b.N; i++ {
					DigammaRow(x, dst)
				}
			})
		})
	}
}

func BenchmarkLogSumExp(b *testing.B) {
	for _, n := range benchLens {
		// Log-score-shaped inputs: negative, a few tens apart, the shape
		// SoftmaxRow normalises every round.
		rng := rand.New(rand.NewSource(7))
		v := make([]float64, n)
		for i := range v {
			v[i] = -40 * rng.Float64()
		}
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			forEachBackendB(b, func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += LogSumExp(v)
				}
				_ = sink
			})
		})
	}
}
