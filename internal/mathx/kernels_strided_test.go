package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence suite for the panel-layer kernels: the strided cube walks
// (AddStrided, MulStridedFloor) and the fused gather-sum kernels
// (AxpyGatherSum, FlooredDotGatherSum). Same contract as kernels_test.go:
// every backend bit-identical to the scalar reference at every length
// 0..130, on well-behaved and adversarial data.

func TestBackendEquivalenceStrided(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(47))
		for n := 0; n <= 130; n++ {
			for _, stride := range []int{1, 2, 3, 7} {
				for trial := 0; trial < 3; trial++ {
					specialEvery := 0
					if trial >= 1 {
						specialEvery = 3
					}
					srcLen := 1
					if n > 0 {
						srcLen = (n-1)*stride + 1
					}
					src := make([]float64, srcLen)
					dst := make([]float64, n)
					fillVec(rng, src, specialEvery)
					fillVec(rng, dst, specialEvery)

					ds := append([]float64(nil), dst...)
					db := append([]float64(nil), dst...)
					ForceBackend("scalar")
					AddStrided(ds, src, stride)
					ForceBackend(name)
					AddStrided(db, src, stride)
					eqBits(t, "AddStrided", n, ds, db)

					// Floor edges: exact tie with a src value, ±Inf, NaN,
					// signed zeros, and the production floor.
					floors := []float64{1e-12, 0.0, math.Copysign(0, -1), math.Inf(-1), math.Inf(1), math.NaN()}
					if n > 0 {
						floors = append(floors, src[rng.Intn(srcLen)])
					}
					for _, floor := range floors {
						ds = append(ds[:0], dst...)
						db = append(db[:0], dst...)
						ForceBackend("scalar")
						MulStridedFloor(ds, src, stride, floor)
						ForceBackend(name)
						MulStridedFloor(db, src, stride, floor)
						eqBits(t, "MulStridedFloor", n, ds, db)
					}
				}
			}
		}
	})
}

// gatherCase builds a src plane of nOffs rows of length n (plus slack so
// offsets are non-trivial) and a shuffled offset per row — the shape the
// score kernels read the transposed ψ cube with.
func gatherCase(rng *rand.Rand, n, nOffs, specialEvery int) (src []float64, offs []int) {
	rowLen := n + rng.Intn(3)
	if rowLen == 0 {
		rowLen = 1
	}
	src = make([]float64, nOffs*rowLen+1)
	fillVec(rng, src, specialEvery)
	offs = make([]int, nOffs)
	perm := rng.Perm(nOffs)
	for j := range offs {
		off := perm[j] * rowLen
		if off+n > len(src) {
			off = len(src) - n
		}
		offs[j] = off
	}
	return src, offs
}

func TestBackendEquivalenceGatherSum(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(48))
		for n := 0; n <= 130; n++ {
			for _, nOffs := range []int{0, 1, 2, 5, 9} {
				for trial := 0; trial < 3; trial++ {
					specialEvery := 0
					if trial >= 1 {
						specialEvery = 3
					}
					src, offs := gatherCase(rng, n, nOffs, specialEvery)
					w := make([]float64, n)
					y := make([]float64, n)
					fillVec(rng, w, specialEvery)
					fillVec(rng, y, specialEvery)
					a := rng.NormFloat64() * 5
					if trial == 2 {
						a = specials[rng.Intn(len(specials))]
					}

					ys := append([]float64(nil), y...)
					yb := append([]float64(nil), y...)
					ForceBackend("scalar")
					AxpyGatherSum(a, src, offs, ys)
					ForceBackend(name)
					AxpyGatherSum(a, src, offs, yb)
					eqBits(t, "AxpyGatherSum", n, ys, yb)

					floors := []float64{1e-8, 0.0, math.Copysign(0, -1), math.Inf(-1), math.Inf(1), math.NaN()}
					if n > 0 {
						floors = append(floors, w[rng.Intn(n)])
					}
					for _, floor := range floors {
						ForceBackend("scalar")
						d1 := FlooredDotGatherSum(w, src, offs, floor)
						groups := FloorGroups(w, floor, nil)
						g1 := FlooredDotGatherSumGroups(w, src, offs, groups, floor)
						ForceBackend(name)
						d2 := FlooredDotGatherSum(w, src, offs, floor)
						g2 := FlooredDotGatherSumGroups(w, src, offs, groups, floor)
						eqBit(t, "FlooredDotGatherSum", n, d1, d2)
						eqBit(t, "FlooredDotGatherSumGroups", n, g1, g2)
						// Omission neutrality: restricting to the surviving
						// groups must not move a bit versus the full row.
						eqBit(t, "FlooredDotGatherSumGroups-vs-full", n, d1, g1)
					}
				}
			}
		}
	})
}

// TestGatherSumMatchesComposition pins the fused kernels to the operations
// they fuse, on the active backend: AxpyGatherSum ≡ build the summed row
// with AddStrided(stride 1) then Axpy it; FlooredDotGatherSum ≡ FlooredDot
// against that row. This is the bit-exactness bridge the score kernels rely
// on — cached panel, fused fallback, and scalar fallback all agree.
func TestGatherSumMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for _, n := range []int{1, 3, 4, 8, 37, 128} {
		for _, nOffs := range []int{1, 2, 6} {
			src, offs := gatherCase(rng, n, nOffs, 0)
			row := make([]float64, n)
			Fill(row, 0)
			for _, o := range offs {
				AddStrided(row, src[o:o+n], 1)
			}

			w := make([]float64, n)
			y := make([]float64, n)
			fillVec(rng, w, 0)
			fillVec(rng, y, 0)
			a := rng.NormFloat64()

			want := append([]float64(nil), y...)
			Axpy(a, row, want)
			got := append([]float64(nil), y...)
			AxpyGatherSum(a, src, offs, got)
			eqBits(t, "AxpyGatherSum-vs-composed", n, want, got)

			d1 := FlooredDot(w, row, 0.5)
			d2 := FlooredDotGatherSum(w, src, offs, 0.5)
			eqBit(t, "FlooredDotGatherSum-vs-composed", n, d1, d2)
		}
	}
}

func TestGatherSumBounds(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on out-of-range offset", name)
			}
		}()
		f()
	}
	src := make([]float64, 16)
	y := make([]float64, 8)
	expectPanic("AxpyGatherSum high", func() { AxpyGatherSum(1, src, []int{9}, y) })
	expectPanic("AxpyGatherSum negative", func() { AxpyGatherSum(1, src, []int{-1}, y) })
	expectPanic("FlooredDotGatherSum high", func() { FlooredDotGatherSum(y, src, []int{9}, 0) })
	expectPanic("FlooredDotGatherSum negative", func() { FlooredDotGatherSum(y, src, []int{-1}, 0) })
	expectPanic("FlooredDotGatherSumGroups group", func() { FlooredDotGatherSumGroups(y, src, []int{0}, []int32{2}, 0) })
	// In-range offsets at the exact boundary must not panic.
	AxpyGatherSum(1, src, []int{8, 0}, y)
	FlooredDotGatherSum(y, src, []int{8, 0}, 0)
}

func FuzzGatherSumEquivalence(f *testing.F) {
	f.Add(make([]byte, 8*12), 3, 1e-8, 2.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, math.Inf(-1), -0.5)
	f.Fuzz(func(t *testing.T, raw []byte, nOffs int, floor, a float64) {
		v := bytesToFloats(raw)
		if nOffs < 0 || nOffs > 8 || len(v) < 2 {
			t.Skip()
		}
		// Carve w (and the axpy y) from the front, leave the rest as the
		// gather plane; derive offsets deterministically from the data.
		n := len(v) / 3
		w, src := v[:n], v[n:]
		if len(src) < n+1 {
			t.Skip()
		}
		offs := make([]int, nOffs)
		for j := range offs {
			offs[j] = (j * 7 % (len(src) - n + 1))
		}
		restore := ActiveBackend()
		defer ForceBackend(restore)
		ForceBackend("scalar")
		wantDot := FlooredDotGatherSum(w, src, offs, floor)
		wantY := append([]float64(nil), w...)
		AxpyGatherSum(a, src, offs, wantY)
		for _, name := range Backends() {
			ForceBackend(name)
			gotDot := FlooredDotGatherSum(w, src, offs, floor)
			if !sameFloat(wantDot, gotDot) {
				t.Fatalf("backend %s dot: %v vs scalar %v", name, gotDot, wantDot)
			}
			gotY := append([]float64(nil), w...)
			AxpyGatherSum(a, src, offs, gotY)
			for i := range wantY {
				if !sameFloat(wantY[i], gotY[i]) {
					t.Fatalf("backend %s axpy entry %d: %v vs scalar %v", name, i, gotY[i], wantY[i])
				}
			}
		}
	})
}
