package mathx

import (
	"fmt"
	"os"
	"sort"
)

// Runtime kernel dispatch. Each backend is a full set of the eight kernel
// entry points; the best available one is selected once at package init
// from the detected CPU features (internal/cpufeat), so steady-state calls
// pay one function-pointer indirection and zero branching. The scalar
// reference backend is always registered and always available — it is the
// specification the SIMD backends are tested against, and the only backend
// compiled under the purego build tag.
//
// Selection order at init: the CPA_SIMD environment variable when set
// ("scalar", "avx2", "neon", or "auto"), otherwise the most specific
// backend the CPU supports. ForceBackend re-selects at runtime — it exists
// for the equivalence tests and for cpabench's -simd flag, and must not be
// called concurrently with kernel use (kernel calls are lock-free).

// kernelImpl is one backend's kernel table. Implementations receive
// pre-clamped, non-empty, equal-length slices from the exported wrappers.
type kernelImpl struct {
	name            string
	axpy            func(a float64, x, y []float64)
	addScaled       func(b, a float64, x, y []float64)
	fill            func(v []float64, x float64)
	scale           func(v []float64, s float64)
	sum             func(v []float64) float64
	flooredDot      func(w, x []float64, floor float64) float64
	digammaRow      func(x, dst []float64)
	logSumExp       func(v []float64) float64
	addStrided      func(dst, src []float64, stride int)
	mulStridedFloor func(dst, src []float64, stride int, floor float64)

	axpyGatherSum             func(a float64, src []float64, offs []int, y []float64)
	flooredDotGatherSum       func(w, src []float64, offs []int, floor float64) float64
	flooredDotGatherSumGroups func(w, src []float64, offs []int, groups []int32, floor float64) float64
}

var scalarImpl = kernelImpl{
	name:            "scalar",
	axpy:            axpyScalar,
	addScaled:       addScaledScalar,
	fill:            fillScalar,
	scale:           scaleScalar,
	sum:             sumScalar,
	flooredDot:      flooredDotScalar,
	digammaRow:      digammaRowScalar,
	logSumExp:       logSumExpScalar,
	addStrided:      addStridedScalar,
	mulStridedFloor: mulStridedFloorScalar,

	axpyGatherSum:             axpyGatherSumScalar,
	flooredDotGatherSum:       flooredDotGatherSumScalar,
	flooredDotGatherSumGroups: flooredDotGatherSumGroupsScalar,
}

// backends holds every backend usable on this CPU, "scalar" first. The
// per-architecture register functions append to it at init.
var backends = []kernelImpl{scalarImpl}

// active is the dispatched backend. Reads are unsynchronised by design.
var active = &backends[0]

func init() {
	registerSIMDBackends()
	choice := os.Getenv("CPA_SIMD")
	if choice == "" || choice == "auto" {
		// Most specific wins: register functions append in ascending
		// preference order.
		active = &backends[len(backends)-1]
		return
	}
	if err := ForceBackend(choice); err != nil {
		fmt.Fprintf(os.Stderr, "cpa: ignoring CPA_SIMD=%q: %v\n", choice, err)
		active = &backends[len(backends)-1]
	}
}

// ForceBackend selects the named kernel backend ("scalar", "avx2", …).
// It returns an error if the backend is unknown or unsupported on this
// CPU. Not safe to call concurrently with kernel use; intended for tests
// and benchmark harnesses.
func ForceBackend(name string) error {
	for i := range backends {
		if backends[i].name == name {
			active = &backends[i]
			return nil
		}
	}
	return fmt.Errorf("mathx: no %q kernel backend on this CPU (have %v)", name, Backends())
}

// ActiveBackend returns the name of the backend kernels currently dispatch
// to — recorded in bench envelopes so perf artifacts say what they
// measured.
func ActiveBackend() string { return active.name }

// Backends lists every backend available on this CPU, sorted, "scalar"
// always included. The equivalence tests iterate this to pin SIMD ≡ scalar.
func Backends() []string {
	names := make([]string, len(backends))
	for i := range backends {
		names[i] = backends[i].name
	}
	sort.Strings(names)
	return names
}
