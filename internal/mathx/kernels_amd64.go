//go:build amd64 && !purego

package mathx

import (
	"math"

	"cpa/internal/cpufeat"
)

// AVX2 backend registration and the Go halves of the split kernels: the
// assembly routines (kernels_amd64.s) process the 4-aligned prefix in the
// canonical lane order, and these wrappers fold tails in sequentially —
// the same canonical order the scalar reference specifies — and handle
// digamma's special lanes with the scalar Digamma.

// simdMinLen is the slice length below which the wrappers stay on the
// scalar reference: under ~8 elements the asm call overhead costs more
// than the vector lanes save, and both paths are bit-identical by
// construction, so the cutoff is a pure performance knob.
const simdMinLen = 8

//go:noescape
func axpyAsm(a float64, x, y []float64)

//go:noescape
func addScaledAsm(b, a float64, x, y []float64)

//go:noescape
func fillAsm(v []float64, x float64)

//go:noescape
func scaleAsm(v []float64, s float64)

//go:noescape
func sumBlockAsm(v []float64) float64

//go:noescape
func flooredDotBlockAsm(w, x []float64, floor float64) float64

//go:noescape
func maxBlockAsm(v []float64) float64

//go:noescape
func expSumBlockAsm(v []float64, maxv float64) float64

//go:noescape
func digammaBlockAsm(x, dst []float64) int

//go:noescape
func addStridedAsm(dst, src []float64, stride int)

//go:noescape
func mulStridedFloorAsm(dst, src []float64, stride int, floor float64)

//go:noescape
func axpyGatherSumAsm(a float64, src []float64, offs []int, y []float64)

//go:noescape
func flooredDotGatherSumAsm(w, src []float64, offs []int, floor float64) float64

//go:noescape
func flooredDotGatherSumGroupsAsm(w, src []float64, offs []int, groups []int32, floor float64) float64

func axpyAVX2(a float64, x, y []float64) {
	if len(x) < simdMinLen {
		axpyScalar(a, x, y)
		return
	}
	axpyAsm(a, x, y)
}

func addScaledAVX2(b, a float64, x, y []float64) {
	if len(x) < simdMinLen {
		addScaledScalar(b, a, x, y)
		return
	}
	addScaledAsm(b, a, x, y)
}

func fillAVX2(v []float64, x float64) {
	if len(v) < simdMinLen {
		fillScalar(v, x)
		return
	}
	fillAsm(v, x)
}

func scaleAVX2(v []float64, s float64) {
	if len(v) < simdMinLen {
		scaleScalar(v, s)
		return
	}
	scaleAsm(v, s)
}

func sumAVX2(v []float64) float64 {
	if len(v) < simdMinLen {
		return sumScalar(v)
	}
	n4 := len(v) &^ 3
	s := sumBlockAsm(v[:n4])
	for i := n4; i < len(v); i++ {
		s += v[i]
	}
	return s
}

func flooredDotAVX2(w, x []float64, floor float64) float64 {
	if len(w) < simdMinLen {
		return flooredDotScalar(w, x, floor)
	}
	n4 := len(w) &^ 3
	s := flooredDotBlockAsm(w[:n4], x[:n4], floor)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * x[i])
		}
		s += p
	}
	return s
}

func digammaRowAVX2(x, dst []float64) {
	i, n := 0, len(x)
	for i < n {
		if n-i >= simdMinLen {
			done := digammaBlockAsm(x[i:], dst[i:])
			i += done
			if i >= n {
				return
			}
		}
		// Scalar for the special block the asm stopped on, or the tail.
		stop := i + 4
		if stop > n {
			stop = n
		}
		for ; i < stop; i++ {
			dst[i] = Digamma(x[i])
		}
	}
}

func addStridedAVX2(dst, src []float64, stride int) {
	if len(dst) < simdMinLen {
		addStridedScalar(dst, src, stride)
		return
	}
	addStridedAsm(dst, src, stride)
}

func mulStridedFloorAVX2(dst, src []float64, stride int, floor float64) {
	if len(dst) < simdMinLen {
		mulStridedFloorScalar(dst, src, stride, floor)
		return
	}
	mulStridedFloorAsm(dst, src, stride, floor)
}

func axpyGatherSumAVX2(a float64, src []float64, offs []int, y []float64) {
	if len(y) < simdMinLen {
		axpyGatherSumScalar(a, src, offs, y)
		return
	}
	n4 := len(y) &^ 3
	axpyGatherSumAsm(a, src, offs, y[:n4])
	for i := n4; i < len(y); i++ {
		y[i] += float64(a * gatherSum(src, offs, i))
	}
}

func flooredDotGatherSumAVX2(w, src []float64, offs []int, floor float64) float64 {
	if len(w) < simdMinLen {
		return flooredDotGatherSumScalar(w, src, offs, floor)
	}
	n4 := len(w) &^ 3
	s := flooredDotGatherSumAsm(w[:n4], src, offs, floor)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * gatherSum(src, offs, i))
		}
		s += p
	}
	return s
}

// denseGroups reports whether the surviving groups cover enough of the row
// for the vector kernels to pay: the asm computes all four lanes of every
// listed group (dead lanes blend to +0.0 after doing the gather work),
// while the scalar reference skips dead lanes lazily — so on concentrated
// rows (late-round κ is near one-hot) scalar wins despite being narrower.
// Both impls are bit-identical, so this gate is value-transparent.
func denseGroups(groups []int32, n4 int) bool {
	return 8*len(groups) >= n4
}

// checkGroups bounds-checks a groups list before it reaches unchecked asm.
// The scalar impls don't need this (the runtime's bounds checks cover
// w[4g]); only the dense-row asm path pays the scan, where the vector body
// it guards dwarfs it.
func checkGroups(groups []int32, n4 int) {
	nG := int32(n4 / 4)
	for _, g := range groups {
		if g < 0 || g >= nG {
			panic("mathx: gather kernel group index out of range")
		}
	}
}

func flooredDotGatherSumGroupsAVX2(w, src []float64, offs []int, groups []int32, floor float64) float64 {
	n4 := len(w) &^ 3
	if n4 == 0 || len(groups) == 0 || !denseGroups(groups, n4) {
		return flooredDotGatherSumGroupsScalar(w, src, offs, groups, floor)
	}
	checkGroups(groups, n4)
	s := flooredDotGatherSumGroupsAsm(w[:n4], src, offs, groups, floor)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * gatherSum(src, offs, i))
		}
		s += p
	}
	return s
}

func logSumExpAVX2(v []float64) float64 {
	if len(v) < simdMinLen {
		return logSumExpScalar(v)
	}
	n4 := len(v) &^ 3
	maxv := maxBlockAsm(v[:n4])
	for i := n4; i < len(v); i++ {
		maxv = fmax(v[i], maxv)
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	s := expSumBlockAsm(v[:n4], maxv)
	for i := n4; i < len(v); i++ {
		s += math.Exp(v[i] - maxv)
	}
	return maxv + math.Log(s)
}

func registerSIMDBackends() {
	if !cpufeat.X86.HasAVX2 {
		return
	}
	avx2 := kernelImpl{
		name:            "avx2",
		axpy:            axpyAVX2,
		addScaled:       addScaledAVX2,
		fill:            fillAVX2,
		scale:           scaleAVX2,
		sum:             sumAVX2,
		flooredDot:      flooredDotAVX2,
		digammaRow:      digammaRowAVX2,
		logSumExp:       logSumExpScalar,
		addStrided:      addStridedAVX2,
		mulStridedFloor: mulStridedFloorAVX2,

		axpyGatherSum:             axpyGatherSumAVX2,
		flooredDotGatherSum:       flooredDotGatherSumAVX2,
		flooredDotGatherSumGroups: flooredDotGatherSumGroupsAVX2,
	}
	// The vector exp replicates math.archExp's FMA variant, so it is only
	// bit-identical to scalar math.Exp when the runtime takes that same
	// path (math's useFMA: AVX && FMA). Without FMA, LogSumExp stays on
	// the scalar kernel.
	if cpufeat.X86.HasAVX && cpufeat.X86.HasFMA {
		avx2.logSumExp = logSumExpAVX2
	}
	backends = append(backends, avx2)
}
