package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestDigammaKnownValues(t *testing.T) {
	// Reference values computed with mpmath to 20 digits.
	cases := []struct {
		x, want float64
	}{
		{1, -Euler},
		{0.5, -Euler - 2*math.Ln2},
		{2, 1 - Euler},
		{3, 1.5 - Euler},
		{4, 1.0/3 + 1.5 - Euler},
		{10, 2.2517525890667211076},
		{100, 4.6001618527380874002},
		{1e6, 13.815510057964274509},
		{0.1, -10.423754940411076795},
		{1e-4, -10000.577051183505},
	}
	for _, c := range cases {
		got := Digamma(c.x)
		tol := 1e-10 * math.Max(1, math.Abs(c.want))
		if !almostEqual(got, c.want, tol) {
			t.Errorf("Digamma(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x must hold for all positive x.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if x < 1e-6 || x > 1e8 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return almostEqual(lhs, rhs, 1e-9*math.Max(1, math.Abs(rhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDigammaReflection(t *testing.T) {
	// ψ(1-x) - ψ(x) = π·cot(πx) for non-integer x.
	for _, x := range []float64{-0.5, -1.5, -2.25, -7.75} {
		lhs := Digamma(1-x) - Digamma(x)
		rhs := math.Pi / math.Tan(math.Pi*x)
		if !almostEqual(lhs, rhs, 1e-8*math.Max(1, math.Abs(rhs))) {
			t.Errorf("reflection at %g: lhs=%g rhs=%g", x, lhs, rhs)
		}
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2, -10} {
		if !math.IsNaN(Digamma(x)) {
			t.Errorf("Digamma(%g) should be NaN at a pole", x)
		}
	}
}

func TestDigammaMonotoneOnPositiveAxis(t *testing.T) {
	prev := Digamma(0.01)
	for x := 0.02; x < 50; x += 0.01 {
		cur := Digamma(x)
		if cur <= prev {
			t.Fatalf("Digamma not strictly increasing at x=%g: %g <= %g", x, cur, prev)
		}
		prev = cur
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
		{10, 0.10516633568168575012},
	}
	for _, c := range cases {
		got := Trigamma(c.x)
		if !almostEqual(got, c.want, 1e-10*math.Max(1, c.want)) {
			t.Errorf("Trigamma(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestTrigammaIsDerivativeOfDigamma(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{0.3, 1, 2.5, 7, 42, 1000} {
		numeric := (Digamma(x+h) - Digamma(x-h)) / (2 * h)
		got := Trigamma(x)
		if !almostEqual(got, numeric, 1e-4*math.Max(1, math.Abs(numeric))) {
			t.Errorf("Trigamma(%g)=%g, numeric derivative %g", x, got, numeric)
		}
	}
}

func TestLogGammaAndLogBeta(t *testing.T) {
	if got := LogGamma(5); !almostEqual(got, math.Log(24), 1e-12) {
		t.Errorf("LogGamma(5) = %g, want ln 24", got)
	}
	// B(a,b) = Γ(a)Γ(b)/Γ(a+b); B(2,3) = 1/12.
	if got := LogBeta(2, 3); !almostEqual(got, math.Log(1.0/12), 1e-12) {
		t.Errorf("LogBeta(2,3) = %g, want ln 1/12", got)
	}
}

func TestLogFactorial(t *testing.T) {
	want := 0.0
	for n := 0; n <= 20; n++ {
		if n >= 2 {
			want += math.Log(float64(n))
		}
		if got := LogFactorial(n); !almostEqual(got, want, 1e-9) {
			t.Errorf("LogFactorial(%d) = %g, want %g", n, got, want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %g, want -Inf", got)
	}
	v := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %g, want ln 6", got)
	}
	// Huge offsets must not overflow.
	v = []float64{1000, 1000 + math.Log(2)}
	if got := LogSumExp(v); !almostEqual(got, 1000+math.Log(3), 1e-9) {
		t.Errorf("LogSumExp with offset = %g", got)
	}
	allNegInf := []float64{math.Inf(-1), math.Inf(-1)}
	if got := LogSumExp(allNegInf); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(-Inf,-Inf) = %g, want -Inf", got)
	}
}

func TestLogSumExp2MatchesSlice(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 500 || math.Abs(b) > 500 {
			return true
		}
		return almostEqual(LogSumExp2(a, b), LogSumExp([]float64{a, b}), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	v := []float64{math.Log(1), math.Log(2), math.Log(7)}
	SoftmaxInPlace(v)
	want := []float64{0.1, 0.2, 0.7}
	for i := range v {
		if !almostEqual(v[i], want[i], 1e-12) {
			t.Errorf("softmax[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	// Degenerate: all -Inf becomes uniform.
	v = []float64{math.Inf(-1), math.Inf(-1)}
	SoftmaxInPlace(v)
	if !almostEqual(v[0], 0.5, 1e-12) || !almostEqual(v[1], 0.5, 1e-12) {
		t.Errorf("softmax of -Inf vector = %v, want uniform", v)
	}
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	f := func(raw [7]float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v = append(v, math.Mod(x, 700)) // keep exp in range
		}
		SoftmaxInPlace(v)
		s := 0.0
		for _, p := range v {
			if p < 0 || p > 1 {
				return false
			}
			s += p
		}
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeInPlace(t *testing.T) {
	v := []float64{1, 3}
	sum := NormalizeInPlace(v)
	if sum != 4 || !almostEqual(v[0], 0.25, 1e-15) || !almostEqual(v[1], 0.75, 1e-15) {
		t.Errorf("NormalizeInPlace = %v (sum %g)", v, sum)
	}
	z := []float64{0, 0, 0, 0}
	NormalizeInPlace(z)
	for _, x := range z {
		if !almostEqual(x, 0.25, 1e-15) {
			t.Errorf("zero vector should normalise to uniform, got %v", z)
		}
	}
}

func TestKahanSumBeatsNaiveOnIllConditionedInput(t *testing.T) {
	// 1 followed by many tiny values that naive summation drops entirely.
	n := 1 << 20
	v := make([]float64, n+1)
	v[0] = 1
	tiny := 1e-16
	for i := 1; i <= n; i++ {
		v[i] = tiny
	}
	want := 1 + float64(n)*tiny
	if got := KahanSum(v); !almostEqual(got, want, 1e-12) {
		t.Errorf("KahanSum = %.18g, want %.18g", got, want)
	}
}

func TestDotAndAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	v := []float64{1, 1, 1}
	AXPY(2, a, v)
	want := []float64{3, 5, 7}
	for i := range v {
		if v[i] != want[i] {
			t.Errorf("AXPY = %v, want %v", v, want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMax([]float64{1, 5, 5, 2}); got != 1 {
		t.Errorf("ArgMax tie should break low, got %d", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 2.5, 2}); got != 1 {
		t.Errorf("MaxAbsDiff = %g, want 1", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %g", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Error("degenerate Mean/StdDev should be 0")
	}
}

func TestScaleFill(t *testing.T) {
	v := Fill(make([]float64, 3), 2)
	Scale(v, 3)
	for _, x := range v {
		if x != 6 {
			t.Errorf("Scale/Fill got %v", v)
		}
	}
}

func BenchmarkDigamma(b *testing.B) {
	x := 0.5
	for i := 0; i < b.N; i++ {
		x = 1 + math.Mod(Digamma(1+x)*Digamma(1+x), 10)
	}
	_ = x
}

func TestDigammaRowMatchesScalar(t *testing.T) {
	xs := []float64{1e-6, 0.1, 0.5, 1, 2.5, 7, 42, 1e6}
	dst := make([]float64, len(xs))
	DigammaRow(xs, dst)
	for i, x := range xs {
		if want := Digamma(x); dst[i] != want {
			t.Errorf("DigammaRow(%v) = %v, want %v (bit-exact)", x, dst[i], want)
		}
	}
	// Length mismatch: fills only the overlap, no panic.
	short := make([]float64, 3)
	DigammaRow(xs, short)
	for i := range short {
		if want := Digamma(xs[i]); short[i] != want {
			t.Errorf("short DigammaRow[%d] = %v, want %v", i, short[i], want)
		}
	}
}
