//go:build purego || !(amd64 || arm64)

package mathx

// registerSIMDBackends is a no-op when the SIMD backends are compiled out:
// under the purego build tag (the scalar-only CI leg) and on architectures
// without a kernel backend. Dispatch then pins the scalar reference.
func registerSIMDBackends() {}
