package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// The SIMD equivalence suite (ISSUE 6): every backend registered on this
// CPU must produce bit-identical results to the scalar reference for every
// kernel, at every length 0..130 (all tail shapes for every unroll width),
// on well-behaved data and on adversarial data — NaN, ±Inf, ±0, denormals,
// exact floor ties, and inputs that drive exp through its overflow,
// underflow, and denormal-ldexp windows.

// sameFloat is the contract's equality: identical bits, except that any
// NaN matches any NaN (payload and sign of NaNs are implementation-chosen
// even between two scalar runs — see the kernels.go contract).
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// eqBits fails the test if a and b differ at any index.
func eqBits(t *testing.T, kernel string, n int, a, b []float64) {
	t.Helper()
	for i := range a {
		if !sameFloat(a[i], b[i]) {
			t.Fatalf("%s: n=%d entry %d differs: %v (%#016x) vs %v (%#016x)",
				kernel, n, i, a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
		}
	}
}

func eqBit(t *testing.T, kernel string, n int, a, b float64) {
	t.Helper()
	if !sameFloat(a, b) {
		t.Fatalf("%s: n=%d differs: %v (%#016x) vs %v (%#016x)",
			kernel, n, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

// specials are adversarial values sprinkled into test vectors.
var specials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1), 0.0, math.Copysign(0, -1),
	5e-324, -5e-324, 2.2250738585072014e-308, -2.2250738585072014e-308,
	1e308, -1e308, 1.0, -1.0,
}

// fillVec fills v with a mix of moderate random values and specials.
func fillVec(rng *rand.Rand, v []float64, specialEvery int) {
	for i := range v {
		if specialEvery > 0 && rng.Intn(specialEvery) == 0 {
			v[i] = specials[rng.Intn(len(specials))]
		} else {
			v[i] = rng.NormFloat64() * 10
		}
	}
}

// forEachSIMDBackend runs f once per non-scalar backend with that backend
// forced, restoring the scalar backend afterwards.
func forEachSIMDBackend(t *testing.T, f func(t *testing.T, name string)) {
	t.Helper()
	names := Backends()
	restore := ActiveBackend()
	defer ForceBackend(restore)
	ran := false
	for _, name := range names {
		if name == "scalar" {
			continue
		}
		ran = true
		t.Run(name, func(t *testing.T) {
			f(t, name)
		})
	}
	if !ran {
		t.Log("no SIMD backend on this CPU; scalar-only run")
	}
}

func TestBackendEquivalenceElementwise(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(42))
		for n := 0; n <= 130; n++ {
			for trial := 0; trial < 4; trial++ {
				specialEvery := 0
				if trial >= 2 {
					specialEvery = 3
				}
				x := make([]float64, n)
				y := make([]float64, n)
				fillVec(rng, x, specialEvery)
				fillVec(rng, y, specialEvery)
				a := rng.NormFloat64() * 5
				b := rng.NormFloat64()
				if trial == 3 {
					a = specials[rng.Intn(len(specials))]
					b = specials[rng.Intn(len(specials))]
				}

				ys := append([]float64(nil), y...)
				yb := append([]float64(nil), y...)
				ForceBackend("scalar")
				Axpy(a, x, ys)
				ForceBackend(name)
				Axpy(a, x, yb)
				eqBits(t, "Axpy", n, ys, yb)

				ys = append(ys[:0], y...)
				yb = append(yb[:0], y...)
				ForceBackend("scalar")
				AddScaled(b, a, x, ys)
				ForceBackend(name)
				AddScaled(b, a, x, yb)
				eqBits(t, "AddScaled", n, ys, yb)

				ys = append(ys[:0], y...)
				yb = append(yb[:0], y...)
				ForceBackend("scalar")
				Scale(ys, a)
				ForceBackend(name)
				Scale(yb, a)
				eqBits(t, "Scale", n, ys, yb)

				ForceBackend("scalar")
				Fill(ys, a)
				ForceBackend(name)
				Fill(yb, a)
				eqBits(t, "Fill", n, ys, yb)
			}
		}
	})
}

func TestBackendEquivalenceReductions(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(43))
		for n := 0; n <= 130; n++ {
			for trial := 0; trial < 4; trial++ {
				specialEvery := 0
				if trial >= 2 {
					specialEvery = 3
				}
				w := make([]float64, n)
				x := make([]float64, n)
				fillVec(rng, w, specialEvery)
				fillVec(rng, x, specialEvery)

				ForceBackend("scalar")
				s1 := Sum(w)
				ForceBackend(name)
				s2 := Sum(w)
				eqBit(t, "Sum", n, s1, s2)

				// Floor edges: a value present in w (exact ties must
				// include), ±Inf, NaN, and signed zero floors.
				floors := []float64{0.5, math.Inf(-1), math.Inf(1), math.NaN(), 0.0, math.Copysign(0, -1)}
				if n > 0 {
					floors = append(floors, w[rng.Intn(n)])
				}
				for _, floor := range floors {
					ForceBackend("scalar")
					d1 := FlooredDot(w, x, floor)
					ForceBackend(name)
					d2 := FlooredDot(w, x, floor)
					eqBit(t, "FlooredDot", n, d1, d2)
				}
			}
		}
	})
}

// logSumExpCases builds vectors that push exp through every window of its
// ldexp: normal results, overflow (+Inf), underflow to 0 (d < -745.2), the
// denormal two-multiply window (d in about (-745.2, -708.4)), and special
// lanes.
func logSumExpCases(rng *rand.Rand, n int) [][]float64 {
	if n == 0 {
		return nil
	}
	cases := make([][]float64, 0, 8)
	mk := func(f func(i int) float64) {
		v := make([]float64, n)
		for i := range v {
			v[i] = f(i)
		}
		cases = append(cases, v)
	}
	mk(func(int) float64 { return rng.NormFloat64() * 10 })
	// Huge spread: max ~700, rest scattered down to the underflow region.
	mk(func(i int) float64 {
		if i == n/2 {
			return 700
		}
		return 700 - 800*rng.Float64()
	})
	// Denormal window: differences from the max in (-745, -708).
	mk(func(i int) float64 {
		if i == 0 {
			return 0
		}
		return -708 - 37*rng.Float64()
	})
	// Near-underflow boundary ±ulps around -745.13.
	mk(func(i int) float64 {
		return -745.133219101941108 + 0.01*rng.NormFloat64()
	})
	// All equal (exercise exp(0) lanes), all -Inf, specials sprinkled.
	mk(func(int) float64 { return 3.25 })
	mk(func(int) float64 { return math.Inf(-1) })
	mk(func(i int) float64 {
		if i%7 == 3 {
			return specials[rng.Intn(len(specials))]
		}
		return rng.NormFloat64() * 200
	})
	// +Inf max lane: exp(x - +Inf) paths.
	mk(func(i int) float64 {
		if i == n-1 {
			return math.Inf(1)
		}
		return rng.NormFloat64()
	})
	return cases
}

func TestBackendEquivalenceLogSumExp(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(44))
		for n := 0; n <= 130; n++ {
			for _, v := range logSumExpCases(rng, n) {
				ForceBackend("scalar")
				l1 := LogSumExp(v)
				ForceBackend(name)
				l2 := LogSumExp(v)
				eqBit(t, "LogSumExp", n, l1, l2)
			}
		}
	})
}

// digammaCases covers the recurrence depth range (tiny through >= 6),
// Dirichlet-typical pseudo-counts, and special lanes at every block
// position: poles (0, negative integers), negative non-integers
// (reflection), NaN and +Inf.
func digammaCases(rng *rand.Rand, n int) [][]float64 {
	if n == 0 {
		return nil
	}
	cases := make([][]float64, 0, 6)
	mk := func(f func(i int) float64) {
		v := make([]float64, n)
		for i := range v {
			v[i] = f(i)
		}
		cases = append(cases, v)
	}
	mk(func(int) float64 { return math.Abs(rng.NormFloat64()*3) + 1e-3 })
	mk(func(int) float64 { return 6 + math.Abs(rng.NormFloat64()*1000) })
	mk(func(int) float64 { return rng.Float64() * 1e-6 })
	// One special lane per block, rotating position.
	sp := []float64{0, -1, -2.5, math.NaN(), math.Inf(1), math.Inf(-1), -0.0}
	mk(func(i int) float64 {
		if i%4 == (i/4)%4 {
			return sp[i%len(sp)]
		}
		return math.Abs(rng.NormFloat64()*10) + 0.01
	})
	// All special.
	mk(func(i int) float64 { return sp[i%len(sp)] })
	// Mixed magnitudes crossing the cutoff within single blocks.
	mk(func(i int) float64 {
		if i%2 == 0 {
			return 0.5 + rng.Float64()
		}
		return 50 + rng.Float64()*1e8
	})
	return cases
}

func TestBackendEquivalenceDigammaRow(t *testing.T) {
	forEachSIMDBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(45))
		for n := 0; n <= 130; n++ {
			for _, v := range digammaCases(rng, n) {
				d1 := make([]float64, n)
				d2 := make([]float64, n)
				ForceBackend("scalar")
				DigammaRow(v, d1)
				ForceBackend(name)
				DigammaRow(v, d2)
				eqBits(t, "DigammaRow", n, d1, d2)
			}
		}
	})
}

// TestDigammaRowMatchesDigamma pins the row kernel to the scalar Digamma
// element by element on the active backend, whatever it is — the property
// the λ-cube expectation refresh relies on.
func TestDigammaRowMatchesDigamma(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	x := make([]float64, 129)
	for i := range x {
		x[i] = math.Abs(rng.NormFloat64()*50) + 1e-4
	}
	dst := make([]float64, len(x))
	DigammaRow(x, dst)
	for i := range x {
		if !sameFloat(dst[i], Digamma(x[i])) {
			t.Fatalf("entry %d: DigammaRow %v vs Digamma %v", i, dst[i], Digamma(x[i]))
		}
	}
}

func TestForceBackend(t *testing.T) {
	restore := ActiveBackend()
	defer ForceBackend(restore)
	if err := ForceBackend("scalar"); err != nil {
		t.Fatalf("scalar backend must always exist: %v", err)
	}
	if got := ActiveBackend(); got != "scalar" {
		t.Fatalf("ActiveBackend = %q after forcing scalar", got)
	}
	if err := ForceBackend("no-such-backend"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
	if got := ActiveBackend(); got != "scalar" {
		t.Fatalf("failed ForceBackend must not change the active backend; got %q", got)
	}
	names := Backends()
	found := false
	for _, n := range names {
		if n == "scalar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() = %v must include scalar", names)
	}
}

// bytesToFloats reinterprets fuzz bytes as float64s (little-endian),
// giving the fuzzer full bit-pattern coverage — NaN payloads included,
// which sameFloat's comparison makes safe.
func bytesToFloats(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		var u uint64
		for j := 0; j < 8; j++ {
			u |= uint64(b[i*8+j]) << (8 * j)
		}
		v[i] = math.Float64frombits(u)
	}
	return v
}

func FuzzFlooredDotEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 0.5)
	f.Add(make([]byte, 8*9), math.Inf(-1))
	f.Fuzz(func(t *testing.T, raw []byte, floor float64) {
		v := bytesToFloats(raw)
		half := len(v) / 2
		w, x := v[:half], v[half:2*half]
		restore := ActiveBackend()
		defer ForceBackend(restore)
		ForceBackend("scalar")
		want := FlooredDot(w, x, floor)
		for _, name := range Backends() {
			ForceBackend(name)
			got := FlooredDot(w, x, floor)
			if !sameFloat(want, got) {
				t.Fatalf("backend %s: %v vs scalar %v", name, got, want)
			}
		}
	})
}

func FuzzLogSumExpEquivalence(f *testing.F) {
	f.Add(make([]byte, 8*13))
	f.Fuzz(func(t *testing.T, raw []byte) {
		v := bytesToFloats(raw)
		restore := ActiveBackend()
		defer ForceBackend(restore)
		ForceBackend("scalar")
		want := LogSumExp(v)
		for _, name := range Backends() {
			ForceBackend(name)
			got := LogSumExp(v)
			if !sameFloat(want, got) {
				t.Fatalf("backend %s: %v vs scalar %v", name, got, want)
			}
		}
	})
}

func FuzzDigammaRowEquivalence(f *testing.F) {
	f.Add(make([]byte, 8*11))
	f.Fuzz(func(t *testing.T, raw []byte) {
		x := bytesToFloats(raw)
		want := make([]float64, len(x))
		got := make([]float64, len(x))
		restore := ActiveBackend()
		defer ForceBackend(restore)
		ForceBackend("scalar")
		DigammaRow(x, want)
		for _, name := range Backends() {
			ForceBackend(name)
			DigammaRow(x, got)
			for i := range want {
				if !sameFloat(want[i], got[i]) {
					t.Fatalf("backend %s entry %d (x=%v): %v vs scalar %v",
						name, i, x[i], got[i], want[i])
				}
			}
		}
	})
}

func FuzzAxpyEquivalence(f *testing.F) {
	f.Add(make([]byte, 8*10), 2.5)
	f.Fuzz(func(t *testing.T, raw []byte, a float64) {
		v := bytesToFloats(raw)
		half := len(v) / 2
		x, y := v[:half], v[half:2*half]
		restore := ActiveBackend()
		defer ForceBackend(restore)
		want := append([]float64(nil), y...)
		ForceBackend("scalar")
		Axpy(a, x, want)
		for _, name := range Backends() {
			got := append([]float64(nil), y...)
			ForceBackend(name)
			Axpy(a, x, got)
			for i := range want {
				if !sameFloat(want[i], got[i]) {
					t.Fatalf("backend %s entry %d: %v vs scalar %v", name, i, got[i], want[i])
				}
			}
		}
	})
}
