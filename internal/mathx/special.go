// Package mathx supplies the special functions and numerically stable
// primitives that the CPA variational inference engine depends on and that
// the Go standard library does not provide: the digamma function, stable
// log-sum-exp reductions, in-place softmax, and a handful of small vector
// helpers used across the inference hot loops.
//
// All functions are pure and allocation-free unless documented otherwise, so
// they are safe for concurrent use from the map-reduce inference shards.
package mathx

import "math"

// Euler is the Euler–Mascheroni constant γ, i.e. -ψ(1) where ψ is digamma.
const Euler = 0.57721566490153286060651209008240243104215933593992

// digammaLargeCutoff is the argument above which the asymptotic expansion of
// the digamma function is accurate to near machine precision. Arguments below
// the cutoff are shifted upward with the recurrence ψ(x) = ψ(x+1) - 1/x.
const digammaLargeCutoff = 6.0

// Digamma returns ψ(x), the logarithmic derivative of the Gamma function,
// for x > 0. For x <= 0 it returns NaN for non-positive integers (poles) and
// uses the reflection formula ψ(1-x) - ψ(x) = π·cot(πx) otherwise.
//
// Accuracy is better than 1e-12 absolute error over (1e-8, 1e8), which is
// ample for variational updates whose inputs are Dirichlet pseudo-counts.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 1) {
		return x
	}
	if x <= 0 {
		// Poles at 0, -1, -2, ...
		if x == math.Trunc(x) {
			return math.NaN()
		}
		// Reflection: ψ(x) = ψ(1-x) - π·cot(πx).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	result := 0.0
	// Recurrence ψ(x) = ψ(x+1) - 1/x until the asymptotic region.
	for x < digammaLargeCutoff {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion:
	// ψ(x) ≈ ln x - 1/(2x) - Σ B_{2n} / (2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	series := inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132-inv2*691.0/32760)))))
	return result + math.Log(x) - 0.5*inv - series
}

// Trigamma returns ψ'(x), the derivative of the digamma function, for x > 0.
// It is used by tests as an independent consistency check on Digamma and by
// the ELBO curvature diagnostics.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 1) {
		return x
	}
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN()
		}
		// Reflection: ψ'(x) + ψ'(1-x) = π² / sin²(πx).
		s := math.Sin(math.Pi * x)
		return math.Pi*math.Pi/(s*s) - Trigamma(1-x)
	}
	result := 0.0
	for x < digammaLargeCutoff {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ψ'(x) ≈ 1/x + 1/(2x²) + Σ B_{2n} / x^{2n+1}.
	series := inv * inv2 * (1.0/6 - inv2*(1.0/30-inv2*(1.0/42-inv2*(1.0/30-inv2*(5.0/66-inv2*691.0/2730)))))
	return result + inv + 0.5*inv2 + series
}

// LogGamma returns ln Γ(x) for x > 0. It wraps math.Lgamma and discards the
// sign, which is always +1 on the positive axis where our callers live.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// LogFactorial returns ln(n!) for n >= 0 using the Gamma function.
func LogFactorial(n int) float64 {
	if n < 2 {
		return 0
	}
	return LogGamma(float64(n) + 1)
}

// LogSumExp2 returns ln(exp(a) + exp(b)) computed stably.
func LogSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// SoftmaxInPlace exponentiates-and-normalises the log weights in v so they
// form a probability vector, working in place. If every entry is -Inf the
// result is the uniform distribution, which is the harmless choice for a
// responsibility vector with no evidence.
func SoftmaxInPlace(v []float64) {
	if len(v) == 0 {
		return
	}
	lse := LogSumExp(v)
	if math.IsInf(lse, -1) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i, x := range v {
		v[i] = math.Exp(x - lse)
	}
}

// NormalizeInPlace scales the non-negative vector v to sum to one. If the sum
// is zero or not finite the vector is set to uniform. It returns the original
// sum so callers can detect degeneracy. The sum uses the canonical kernel
// reduction order (Sum), so normalisation is bit-identical across backends.
func NormalizeInPlace(v []float64) float64 {
	sum := Sum(v)
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return sum
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
	return sum
}

// KahanSum returns the compensated (Kahan–Babuška) sum of v, which keeps the
// ELBO trace monotone-within-tolerance even for very long accumulations.
func KahanSum(v []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range v {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Dot returns the inner product of a and b. It panics if the lengths differ,
// because a length mismatch in an inference loop is a programming error, not
// a recoverable condition.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// ArgMax returns the index of the maximum element, breaking ties toward the
// smallest index. It returns -1 for an empty slice.
func ArgMax(v []float64) int {
	best, bestIdx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, bestIdx = x, i
		}
	}
	return bestIdx
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MaxAbsDiff returns max_i |a_i - b_i|, the convergence criterion used by
// Algorithm 1 ("all model parameter differences below 1e-3"). It panics on
// length mismatch.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: MaxAbsDiff length mismatch")
	}
	m := 0.0
	for i, x := range a {
		d := math.Abs(x - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// StdDev returns the population standard deviation of v, or 0 for fewer than
// two samples. Used by Table 5's ± deviations.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mu := Mean(v)
	ss := 0.0
	for _, x := range v {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(v)))
}
