//go:build amd64 && !purego

// AVX2 kernel backends (ISSUE 6). Every routine here implements the
// canonical kernel semantics specified by the scalar reference loops in
// kernels.go, bit for bit:
//
//   - Element-wise kernels use separate VMULPD + VADDPD (never FMA), so
//     each element sees exactly the two roundings the scalar loop performs.
//   - Reduction kernels keep four lane accumulators in one ymm register and
//     combine them as (s0+s2)+(s1+s3) via extract-high + vertical add +
//     horizontal add — the canonical 4-lane-strided order. Callers (the Go
//     wrappers in kernels_amd64.go) fold any tail in sequentially after the
//     combine, exactly like the scalar reference.
//   - FlooredDot masks with VCMPPD(GE_OS) + VANDPD, so sub-floor entries
//     contribute +0.0 to their lane — matching the scalar reference's
//     explicit +0.0 adds.
//   - expSumBlock replicates math.archExp's AVX/FMA path (exp_amd64.s,
//     useFMA variant) lane-parallel, including the fused final x*(x+2)+1
//     step and ldexp's two-multiply denormal path, so Σexp matches a
//     scalar math.Exp loop bit for bit on any CPU where useFMA is set
//     (the wrapper only registers it when cpufeat reports AVX+FMA).
//   - digammaBlock replicates math.archLog (log_amd64.s) lane-parallel for
//     the x >= 6 asymptotic region (always normal positive there, so the
//     scalar routine's special-case branches are unreachable), and runs the
//     ψ(x) = ψ(x+1) - 1/x recurrence with masked lane updates: inactive
//     lanes subtract/add +0.0, which is a bit-exact identity. Blocks
//     containing a special lane (x <= 0, NaN, +Inf) make the routine return
//     early with the element count processed so far; the Go wrapper handles
//     those four elements with the scalar Digamma and resumes.
//
// Operand-order discipline: where a scalar reference op is not exactly
// commutative in its bit effects (NaN payload selection for add/sub/mul,
// value selection for max), the vector instruction keeps the same src1 as
// the scalar code. See fmax in kernels.go for the max convention.

#include "textflag.h"

#define expcHALF expc<>+0(SB)
#define expcONE expc<>+32(SB)
#define expcTWO expc<>+64(SB)
#define expcT6 expc<>+96(SB)
#define expcT5 expc<>+128(SB)
#define expcT4 expc<>+160(SB)
#define expcT3 expc<>+192(SB)
#define expcT2 expc<>+224(SB)
#define expcT1 expc<>+256(SB)
#define expcLOG2E expc<>+288(SB)
#define expcLN2U expc<>+320(SB)
#define expcLN2L expc<>+352(SB)
#define expcSIXT expc<>+384(SB)
#define expcOVF expc<>+416(SB)
#define expcPOSINF expc<>+448(SB)
#define expcNEGINF expc<>+480(SB)
#define expcABSMASK expc<>+512(SB)
#define expcNFTHRESH expc<>+544(SB)
#define expcMINNORM expc<>+576(SB)

#define digcSIX digc<>+0(SB)
#define digcONE digc<>+32(SB)
#define digcTWO digc<>+64(SB)
#define digcHALF digc<>+96(SB)
#define digcC1 digc<>+128(SB)
#define digcC2 digc<>+160(SB)
#define digcC3 digc<>+192(SB)
#define digcC4 digc<>+224(SB)
#define digcC5 digc<>+256(SB)
#define digcB691 digc<>+288(SB)
#define digcB32760 digc<>+320(SB)
#define digcPOSINF digc<>+352(SB)
#define digcMANTMASK digc<>+384(SB)
#define digcMAGIC digc<>+416(SB)
#define digcC1022 digc<>+448(SB)
#define digcHSQRT2 digc<>+480(SB)
#define digcL1 digc<>+512(SB)
#define digcL2 digc<>+544(SB)
#define digcL3 digc<>+576(SB)
#define digcL4 digc<>+608(SB)
#define digcL5 digc<>+640(SB)
#define digcL6 digc<>+672(SB)
#define digcL7 digc<>+704(SB)
#define digcLN2HI digc<>+736(SB)
#define digcLN2LO digc<>+768(SB)

#define intcD3FF intc<>+0(SB)
#define intcDONE intc<>+16(SB)
#define intcD7FE intc<>+32(SB)
#define intcDNEG52 intc<>+48(SB)
#define intcD3FE intc<>+64(SB)

// func axpyAsm(a float64, x, y []float64)
// y[i] += a*x[i]; handles the whole slice including the tail.
TEXT ·axpyAsm(SB), NOSPLIT, $0-56
	MOVSD a+0(FP), X0
	VBROADCASTSD X0, Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ y_base+32(FP), DI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
axpy4:
	CMPQ AX, DX
	JGE  axpytail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1        // a*x (two roundings with the add below: no FMA)
	VMOVUPD (DI)(AX*8), Y2
	VADDPD  Y1, Y2, Y2        // y + a*x, src1=y
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy4
axpytail:
	CMPQ AX, CX
	JGE  axpydone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD (DI)(AX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ AX
	JMP  axpytail
axpydone:
	VZEROUPPER
	RET

// func addScaledAsm(b, a float64, x, y []float64)
// y[i] = y[i]*b + a*x[i]; handles the whole slice including the tail.
TEXT ·addScaledAsm(SB), NOSPLIT, $0-64
	MOVSD b+0(FP), X0
	VBROADCASTSD X0, Y0
	MOVSD a+8(FP), X1
	VBROADCASTSD X1, Y1
	MOVQ x_base+16(FP), SI
	MOVQ x_len+24(FP), CX
	MOVQ y_base+40(FP), DI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
adds4:
	CMPQ AX, DX
	JGE  addstail
	VMOVUPD (DI)(AX*8), Y2
	VMULPD  Y0, Y2, Y2        // y*b, src1=y
	VMOVUPD (SI)(AX*8), Y3
	VMULPD  Y1, Y3, Y3        // a*x
	VADDPD  Y3, Y2, Y2        // (y*b) + (a*x), src1=y*b
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  adds4
addstail:
	CMPQ AX, CX
	JGE  addsdone
	VMOVSD (DI)(AX*8), X2
	VMULSD X0, X2, X2
	VMOVSD (SI)(AX*8), X3
	VMULSD X1, X3, X3
	VADDSD X3, X2, X2
	VMOVSD X2, (DI)(AX*8)
	INCQ AX
	JMP  addstail
addsdone:
	VZEROUPPER
	RET

// func fillAsm(v []float64, x float64)
TEXT ·fillAsm(SB), NOSPLIT, $0-32
	MOVQ v_base+0(FP), DI
	MOVQ v_len+8(FP), CX
	MOVSD x+24(FP), X0
	VBROADCASTSD X0, Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
fill4:
	CMPQ AX, DX
	JGE  filltail
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  fill4
filltail:
	CMPQ AX, CX
	JGE  filldone
	VMOVSD X0, (DI)(AX*8)
	INCQ AX
	JMP  filltail
filldone:
	VZEROUPPER
	RET

// func scaleAsm(v []float64, s float64)
TEXT ·scaleAsm(SB), NOSPLIT, $0-32
	MOVQ v_base+0(FP), DI
	MOVQ v_len+8(FP), CX
	MOVSD s+24(FP), X0
	VBROADCASTSD X0, Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
scale4:
	CMPQ AX, DX
	JGE  scaletail
	VMOVUPD (DI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1        // v*s, src1=v
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  scale4
scaletail:
	CMPQ AX, CX
	JGE  scaledone
	VMOVSD (DI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  scaletail
scaledone:
	VZEROUPPER
	RET

// func sumBlockAsm(v []float64) float64
// len(v) must be a positive multiple of 4. Returns (s0+s2)+(s1+s3); the
// caller folds any tail in afterwards.
TEXT ·sumBlockAsm(SB), NOSPLIT, $0-32
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	XORQ AX, AX
sum4:
	VADDPD (SI)(AX*8), Y0, Y0 // lane accumulate, src1=acc
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  sum4
	VEXTRACTF128 $1, Y0, X1   // [s2, s3]
	VADDPD X1, X0, X0         // [s0+s2, s1+s3], src1=[s0,s1]
	VPERMILPD $1, X0, X1      // [s1+s3, s0+s2]
	VADDSD X1, X0, X0         // (s0+s2)+(s1+s3), src1=s0+s2
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func flooredDotBlockAsm(w, x []float64, floor float64) float64
// len must be a positive multiple of 4 (w and x equal length).
TEXT ·flooredDotBlockAsm(SB), NOSPLIT, $0-64
	MOVQ w_base+0(FP), SI
	MOVQ w_len+8(FP), CX
	MOVQ x_base+24(FP), DI
	VBROADCASTSD floor+48(FP), Y3
	VXORPS Y0, Y0, Y0
	XORQ AX, AX
fdot4:
	VMOVUPD (SI)(AX*8), Y1    // w
	VMOVUPD (DI)(AX*8), Y2    // x
	VMULPD  Y2, Y1, Y2        // w*x, src1=w
	VCMPPD  $0x0D, Y3, Y1, Y1 // mask = w >= floor (GE_OS: NaN -> false)
	VANDPD  Y1, Y2, Y2        // blend-to-zero: sub-floor lanes add +0.0
	VADDPD  Y2, Y0, Y0        // lane accumulate, src1=acc
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  fdot4
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+56(FP)
	RET

// func maxBlockAsm(v []float64) float64
// len(v) must be a positive multiple of 4. Lane update is MAXPD(x, m) —
// exactly the fmax(x, m) of the scalar reference — and the combine is
// fmax(fmax(m3,m1), fmax(m2,m0)).
TEXT ·maxBlockAsm(SB), NOSPLIT, $0-32
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), CX
	VBROADCASTSD expcNEGINF, Y0
	XORQ AX, AX
max4:
	VMOVUPD (SI)(AX*8), Y1
	VMAXPD Y0, Y1, Y0         // m = MAXPD(src1=x, src2=m) = fmax(x, m)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  max4
	VEXTRACTF128 $1, Y0, X1   // [m2, m3]
	VMAXPD X0, X1, X2         // [fmax(m2,m0), fmax(m3,m1)], src1=[m2,m3]
	VPERMILPD $1, X2, X3      // [fmax(m3,m1), ...]
	VMAXPD X2, X3, X0         // fmax(fmax(m3,m1), fmax(m2,m0)), src1 high pair
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func expSumBlockAsm(v []float64, maxv float64) float64
// len(v) must be a positive multiple of 4. Computes Σ exp(v[i]-maxv) with
// the canonical lane order; exp is math.archExp's AVX/FMA path replicated
// on four lanes (requires FMA — only registered when cpufeat reports it).
TEXT ·expSumBlockAsm(SB), NOSPLIT, $0-40
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), CX
	VBROADCASTSD maxv+24(FP), Y15
	VXORPS Y0, Y0, Y0         // acc
	XORQ AX, AX
exp4:
	VMOVUPD (SI)(AX*8), Y1
	VSUBPD Y15, Y1, Y1        // r = v - maxv, src1=v
	VMOVAPD Y1, Y8            // keep original r for the special-case blends

	// k = int32(round(LOG2E * r)); kf = float64(k)
	VMULPD expcLOG2E, Y1, Y2
	VCVTPD2DQY Y2, X3         // round-to-nearest, like CVTSD2SL
	VCVTDQ2PD X3, Y2

	// r -= kf*LN2U; r -= kf*LN2L (fused, exactly like archExp's avxfma)
	VFNMADD231PD expcLN2U, Y2, Y1
	VFNMADD231PD expcLN2L, Y2, Y1
	VMULPD expcSIXT, Y1, Y1   // r *= 0.0625

	// Taylor series, FMA chain identical to archExp
	VMOVUPD expcT1, Y4
	VFMADD213PD expcT2, Y1, Y4
	VFMADD213PD expcT3, Y1, Y4
	VFMADD213PD expcT4, Y1, Y4
	VFMADD213PD expcT5, Y1, Y4
	VFMADD213PD expcT6, Y1, Y4
	VFMADD213PD expcHALF, Y1, Y4
	VFMADD213PD expcONE, Y1, Y4
	VMULPD Y4, Y1, Y1         // r *= poly, src1=r

	// Four squaring steps x = x*(x+2); the last is fused with +1.0
	VADDPD expcTWO, Y1, Y4
	VMULPD Y4, Y1, Y1
	VADDPD expcTWO, Y1, Y4
	VMULPD Y4, Y1, Y1
	VADDPD expcTWO, Y1, Y4
	VMULPD Y4, Y1, Y1
	VADDPD expcTWO, Y1, Y4
	VFMADD213PD expcONE, Y4, Y1 // r = (r+2)*r + 1.0 (fused, like archExp)

	// ldexp: kb = k + 1023
	VPADDD intcD3FF, X3, X5
	VMOVDQU intcDONE, X6
	VPCMPGTD X5, X6, X6       // den32 = (1 > kb)  <=> kb <= 0
	VMOVDQU intcDNEG52, X7
	VPCMPGTD X5, X7, X7       // und32 = (-52 > kb) <=> kb < -52
	VPCMPGTD intcD7FE, X5, X9 // ovf32 = kb > 0x7FE <=> kb >= 0x7FF
	VMOVDQU intcD3FE, X10
	VPAND X6, X10, X10        // adj = den ? 0x3FE : 0
	VPADDD X10, X5, X5        // e1 = kb + adj
	VPMOVSXDQ X5, Y10
	VPSLLQ $52, Y10, Y10      // scale1 = 2^(e1-1023) bits
	VPMOVSXDQ X6, Y6          // den64
	VPMOVSXDQ X7, Y7          // und64
	VPMOVSXDQ X9, Y9          // ovf64
	VMOVUPD expcONE, Y11
	VMOVUPD expcMINNORM, Y12
	VBLENDVPD Y6, Y12, Y11, Y11 // scale2 = den ? 2^-1022 : 1.0
	VMULPD Y10, Y1, Y1        // y *= scale1, src1=y
	VMULPD Y11, Y1, Y1        // y *= scale2 (second rounding of the denormal path)
	VANDNPD Y1, Y7, Y1        // kb < -52: underflow to +0

	// overflow to +Inf: via kb >= 0x7FF, and via r > Overflow (covers the
	// huge inputs whose int32 k wrapped)
	VMOVUPD expcPOSINF, Y12
	VBLENDVPD Y9, Y12, Y1, Y1
	VCMPPD $0x0E, expcOVF, Y8, Y9 // r > Overflow (GT_OS)
	VBLENDVPD Y9, Y12, Y1, Y1

	// NaN/±Inf input: return r itself... then -Inf: return +0
	VANDPD expcABSMASK, Y8, Y13
	VPCMPGTQ expcNFTHRESH, Y13, Y13 // abs(r) >= +Inf bits
	VBLENDVPD Y13, Y8, Y1, Y1
	VPCMPEQQ expcNEGINF, Y8, Y13
	VANDNPD Y1, Y13, Y1

	VADDPD Y1, Y0, Y0         // acc += exp lanes, src1=acc
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  exp4

	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+32(FP)
	RET

// func digammaBlockAsm(x, dst []float64) int
// Processes whole 4-element blocks of dst[i] = ψ(x[i]) until the first
// block containing a lane outside the fast path (x <= 0, ±0, NaN, +Inf);
// returns the number of elements written. The fast path is the scalar
// Digamma's positive branch: the ψ(x)=ψ(x+1)-1/x recurrence up to x >= 6
// with masked lane updates, then the asymptotic series with math.archLog
// replicated on four lanes.
TEXT ·digammaBlockAsm(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ dst_base+24(FP), DI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX
	VMOVUPD digcONE, Y13
	VMOVUPD digcSIX, Y14
digblock:
	CMPQ AX, DX
	JGE  digdone
	VMOVUPD (SI)(AX*8), Y1    // x

	// fast-path mask: x > 0 and x != +Inf (NaN fails the compare)
	VXORPS Y2, Y2, Y2
	VCMPPD $0x0E, Y2, Y1, Y2  // x > 0 (GT_OS)
	VPCMPEQQ digcPOSINF, Y1, Y3
	VANDNPD Y2, Y3, Y2        // fast = ~(x == +Inf) & (x > 0)
	VMOVMSKPD Y2, BX
	CMPL BX, $0xF
	JNE  digdone              // special lane: caller handles this block

	// recurrence: result -= 1/x; x += 1 while x < 6, masked per lane
	// (inactive lanes subtract/add +0.0 — a bit-exact identity)
	VXORPS Y4, Y4, Y4         // result
	VCMPPD $0x01, Y14, Y1, Y2 // active = x < 6 (LT_OS)
	VMOVMSKPD Y2, BX
	TESTL BX, BX
	JE   digasym
digrec:
	VDIVPD Y1, Y13, Y5        // q = 1.0/x, src1=1.0
	VANDPD Y2, Y5, Y5
	VSUBPD Y5, Y4, Y4         // result -= q, src1=result
	VANDPD Y2, Y13, Y5        // step = active ? 1.0 : +0.0
	VADDPD Y5, Y1, Y1         // x += step, src1=x
	VCMPPD $0x01, Y14, Y1, Y2
	VMOVMSKPD Y2, BX
	TESTL BX, BX
	JNE  digrec
digasym:
	// inv = 1/x; inv2 = inv*inv
	VDIVPD Y1, Y13, Y5        // inv, src1=1.0
	VMULPD Y5, Y5, Y6         // inv2, src1=inv

	// series = inv2*(C1 - inv2*(C2 - inv2*(C3 - inv2*(C4 - inv2*(C5 -
	//          inv2*691.0/32760)))))   [inv2*691.0/32760 is (inv2*691)/32760]
	VMULPD digcB691, Y6, Y7   // t = inv2*691, src1=inv2
	VDIVPD digcB32760, Y7, Y7 // t /= 32760, src1=t
	VMOVUPD digcC5, Y8
	VSUBPD Y7, Y8, Y7         // C5 - t, src1=C5
	VMULPD Y7, Y6, Y7         // inv2 * t, src1=inv2
	VMOVUPD digcC4, Y8
	VSUBPD Y7, Y8, Y7
	VMULPD Y7, Y6, Y7
	VMOVUPD digcC3, Y8
	VSUBPD Y7, Y8, Y7
	VMULPD Y7, Y6, Y7
	VMOVUPD digcC2, Y8
	VSUBPD Y7, Y8, Y7
	VMULPD Y7, Y6, Y7
	VMOVUPD digcC1, Y8
	VSUBPD Y7, Y8, Y7
	VMULPD Y7, Y6, Y7         // series
	VMULPD digcHALF, Y5, Y8   // 0.5*inv

	// lg = archLog(x) on four lanes; x >= 6 here, always normal positive.
	// Mirrors log_amd64.s step for step (same src1 operands throughout).
	VANDPD digcMANTMASK, Y1, Y2
	VORPD digcHALF, Y2, Y2    // f1 = frexp mantissa in [0.5, 1)
	VPSRLQ $52, Y1, Y3        // biased exponent (x > 0: no sign bit)
	VPOR digcMAGIC, Y3, Y3
	VSUBPD digcMAGIC, Y3, Y3  // float64(biased exponent), exact
	VSUBPD digcC1022, Y3, Y3  // k = e - 0x3FE, exact
	VMOVUPD digcHSQRT2, Y10
	VCMPPD $5, Y2, Y10, Y10   // NLT: !(HSqrt2 < f1), i.e. f1 <= sqrt2/2
	VANDPD Y10, Y13, Y10      // adj = 1.0 or +0.0
	VSUBPD Y10, Y3, Y3        // k -= adj, src1=k
	VADDPD Y13, Y10, Y10      // mult = adj + 1.0, src1=adj
	VMULPD Y10, Y2, Y2        // f1 *= mult, src1=f1
	VSUBPD Y13, Y2, Y2        // f = f1 - 1, src1=f1
	VMOVUPD digcTWO, Y10
	VADDPD Y2, Y10, Y10       // 2 + f, src1=2.0
	VDIVPD Y10, Y2, Y10       // s = f/(2+f), src1=f
	VMULPD Y10, Y10, Y11      // s2, src1=s
	VMULPD Y11, Y11, Y12      // s4, src1=s2
	VMOVUPD digcL7, Y9
	VMULPD Y12, Y9, Y9        // L7*s4, src1=L7
	VADDPD digcL5, Y9, Y9
	VMULPD Y12, Y9, Y9
	VADDPD digcL3, Y9, Y9
	VMULPD Y12, Y9, Y9
	VADDPD digcL1, Y9, Y9
	VMULPD Y9, Y11, Y11       // t1 = s2*poly, src1=s2
	VMOVUPD digcL6, Y9
	VMULPD Y12, Y9, Y9
	VADDPD digcL4, Y9, Y9
	VMULPD Y12, Y9, Y9
	VADDPD digcL2, Y9, Y9
	VMULPD Y9, Y12, Y12       // t2 = s4*poly, src1=s4
	VADDPD Y12, Y11, Y11      // R = t1 + t2, src1=t1
	VMULPD digcHALF, Y2, Y9   // 0.5*f
	VMULPD Y2, Y9, Y9         // hfsq = (0.5*f)*f, src1=0.5*f
	VADDPD Y9, Y11, Y11       // hfsq+R computed as R+hfsq, like the scalar asm
	VMULPD Y11, Y10, Y10      // s*(hfsq+R), src1=s
	VMULPD digcLN2LO, Y3, Y11 // k*Ln2Lo
	VADDPD Y11, Y10, Y10      // s*(hfsq+R) + k*Ln2Lo, src1=s*(hfsq+R)
	VSUBPD Y10, Y9, Y9        // hfsq - (...), src1=hfsq
	VSUBPD Y2, Y9, Y9         // (...) - f, src1=above
	VMULPD digcLN2HI, Y3, Y3  // k*Ln2Hi, src1=k
	VSUBPD Y9, Y3, Y9         // lg = k*Ln2Hi - (...), src1=k*Ln2Hi

	// result = ((result + lg) - 0.5*inv) - series
	VADDPD Y9, Y4, Y4         // src1=result
	VSUBPD Y8, Y4, Y4         // src1=above
	VSUBPD Y7, Y4, Y4         // src1=above
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  digblock
digdone:
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET
DATA expc<>+0(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA expc<>+8(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA expc<>+16(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA expc<>+24(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA expc<>+32(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA expc<>+40(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA expc<>+48(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA expc<>+56(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA expc<>+64(SB)/8, $0x4000000000000000 // TWO 2.0
DATA expc<>+72(SB)/8, $0x4000000000000000 // TWO 2.0
DATA expc<>+80(SB)/8, $0x4000000000000000 // TWO 2.0
DATA expc<>+88(SB)/8, $0x4000000000000000 // TWO 2.0
DATA expc<>+96(SB)/8, $0x3FC5555555555555 // T6
DATA expc<>+104(SB)/8, $0x3FC5555555555555 // T6
DATA expc<>+112(SB)/8, $0x3FC5555555555555 // T6
DATA expc<>+120(SB)/8, $0x3FC5555555555555 // T6
DATA expc<>+128(SB)/8, $0x3FA5555555555555 // T5
DATA expc<>+136(SB)/8, $0x3FA5555555555555 // T5
DATA expc<>+144(SB)/8, $0x3FA5555555555555 // T5
DATA expc<>+152(SB)/8, $0x3FA5555555555555 // T5
DATA expc<>+160(SB)/8, $0x3F81111111111111 // T4
DATA expc<>+168(SB)/8, $0x3F81111111111111 // T4
DATA expc<>+176(SB)/8, $0x3F81111111111111 // T4
DATA expc<>+184(SB)/8, $0x3F81111111111111 // T4
DATA expc<>+192(SB)/8, $0x3F56C16C16C16C17 // T3
DATA expc<>+200(SB)/8, $0x3F56C16C16C16C17 // T3
DATA expc<>+208(SB)/8, $0x3F56C16C16C16C17 // T3
DATA expc<>+216(SB)/8, $0x3F56C16C16C16C17 // T3
DATA expc<>+224(SB)/8, $0x3F2A01A01A01A01A // T2
DATA expc<>+232(SB)/8, $0x3F2A01A01A01A01A // T2
DATA expc<>+240(SB)/8, $0x3F2A01A01A01A01A // T2
DATA expc<>+248(SB)/8, $0x3F2A01A01A01A01A // T2
DATA expc<>+256(SB)/8, $0x3EFA01A01A01A01A // T1
DATA expc<>+264(SB)/8, $0x3EFA01A01A01A01A // T1
DATA expc<>+272(SB)/8, $0x3EFA01A01A01A01A // T1
DATA expc<>+280(SB)/8, $0x3EFA01A01A01A01A // T1
DATA expc<>+288(SB)/8, $0x3FF71547652B82FE // LOG2E
DATA expc<>+296(SB)/8, $0x3FF71547652B82FE // LOG2E
DATA expc<>+304(SB)/8, $0x3FF71547652B82FE // LOG2E
DATA expc<>+312(SB)/8, $0x3FF71547652B82FE // LOG2E
DATA expc<>+320(SB)/8, $0x3FE62E42FEFA3000 // LN2U
DATA expc<>+328(SB)/8, $0x3FE62E42FEFA3000 // LN2U
DATA expc<>+336(SB)/8, $0x3FE62E42FEFA3000 // LN2U
DATA expc<>+344(SB)/8, $0x3FE62E42FEFA3000 // LN2U
DATA expc<>+352(SB)/8, $0x3D53DE6AF278ECE6 // LN2L
DATA expc<>+360(SB)/8, $0x3D53DE6AF278ECE6 // LN2L
DATA expc<>+368(SB)/8, $0x3D53DE6AF278ECE6 // LN2L
DATA expc<>+376(SB)/8, $0x3D53DE6AF278ECE6 // LN2L
DATA expc<>+384(SB)/8, $0x3FB0000000000000 // SIXT 0.0625
DATA expc<>+392(SB)/8, $0x3FB0000000000000 // SIXT 0.0625
DATA expc<>+400(SB)/8, $0x3FB0000000000000 // SIXT 0.0625
DATA expc<>+408(SB)/8, $0x3FB0000000000000 // SIXT 0.0625
DATA expc<>+416(SB)/8, $0x40862E42FEFA39EF // OVF 709.78...
DATA expc<>+424(SB)/8, $0x40862E42FEFA39EF // OVF 709.78...
DATA expc<>+432(SB)/8, $0x40862E42FEFA39EF // OVF 709.78...
DATA expc<>+440(SB)/8, $0x40862E42FEFA39EF // OVF 709.78...
DATA expc<>+448(SB)/8, $0x7FF0000000000000 // POSINF
DATA expc<>+456(SB)/8, $0x7FF0000000000000 // POSINF
DATA expc<>+464(SB)/8, $0x7FF0000000000000 // POSINF
DATA expc<>+472(SB)/8, $0x7FF0000000000000 // POSINF
DATA expc<>+480(SB)/8, $0xFFF0000000000000 // NEGINF
DATA expc<>+488(SB)/8, $0xFFF0000000000000 // NEGINF
DATA expc<>+496(SB)/8, $0xFFF0000000000000 // NEGINF
DATA expc<>+504(SB)/8, $0xFFF0000000000000 // NEGINF
DATA expc<>+512(SB)/8, $0x7FFFFFFFFFFFFFFF // ABSMASK
DATA expc<>+520(SB)/8, $0x7FFFFFFFFFFFFFFF // ABSMASK
DATA expc<>+528(SB)/8, $0x7FFFFFFFFFFFFFFF // ABSMASK
DATA expc<>+536(SB)/8, $0x7FFFFFFFFFFFFFFF // ABSMASK
DATA expc<>+544(SB)/8, $0x7FEFFFFFFFFFFFFF // NFTHRESH
DATA expc<>+552(SB)/8, $0x7FEFFFFFFFFFFFFF // NFTHRESH
DATA expc<>+560(SB)/8, $0x7FEFFFFFFFFFFFFF // NFTHRESH
DATA expc<>+568(SB)/8, $0x7FEFFFFFFFFFFFFF // NFTHRESH
DATA expc<>+576(SB)/8, $0x0010000000000000 // MINNORM 2^-1022
DATA expc<>+584(SB)/8, $0x0010000000000000 // MINNORM 2^-1022
DATA expc<>+592(SB)/8, $0x0010000000000000 // MINNORM 2^-1022
DATA expc<>+600(SB)/8, $0x0010000000000000 // MINNORM 2^-1022
GLOBL expc<>(SB), RODATA|NOPTR, $608

DATA digc<>+0(SB)/8, $0x4018000000000000 // SIX 6.0
DATA digc<>+8(SB)/8, $0x4018000000000000 // SIX 6.0
DATA digc<>+16(SB)/8, $0x4018000000000000 // SIX 6.0
DATA digc<>+24(SB)/8, $0x4018000000000000 // SIX 6.0
DATA digc<>+32(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA digc<>+40(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA digc<>+48(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA digc<>+56(SB)/8, $0x3FF0000000000000 // ONE 1.0
DATA digc<>+64(SB)/8, $0x4000000000000000 // TWO 2.0
DATA digc<>+72(SB)/8, $0x4000000000000000 // TWO 2.0
DATA digc<>+80(SB)/8, $0x4000000000000000 // TWO 2.0
DATA digc<>+88(SB)/8, $0x4000000000000000 // TWO 2.0
DATA digc<>+96(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA digc<>+104(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA digc<>+112(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA digc<>+120(SB)/8, $0x3FE0000000000000 // HALF 0.5
DATA digc<>+128(SB)/8, $0x3FB5555555555555 // C1 1/12
DATA digc<>+136(SB)/8, $0x3FB5555555555555 // C1 1/12
DATA digc<>+144(SB)/8, $0x3FB5555555555555 // C1 1/12
DATA digc<>+152(SB)/8, $0x3FB5555555555555 // C1 1/12
DATA digc<>+160(SB)/8, $0x3F81111111111111 // C2 1/120
DATA digc<>+168(SB)/8, $0x3F81111111111111 // C2 1/120
DATA digc<>+176(SB)/8, $0x3F81111111111111 // C2 1/120
DATA digc<>+184(SB)/8, $0x3F81111111111111 // C2 1/120
DATA digc<>+192(SB)/8, $0x3F70410410410410 // C3 1/252
DATA digc<>+200(SB)/8, $0x3F70410410410410 // C3 1/252
DATA digc<>+208(SB)/8, $0x3F70410410410410 // C3 1/252
DATA digc<>+216(SB)/8, $0x3F70410410410410 // C3 1/252
DATA digc<>+224(SB)/8, $0x3F71111111111111 // C4 1/240
DATA digc<>+232(SB)/8, $0x3F71111111111111 // C4 1/240
DATA digc<>+240(SB)/8, $0x3F71111111111111 // C4 1/240
DATA digc<>+248(SB)/8, $0x3F71111111111111 // C4 1/240
DATA digc<>+256(SB)/8, $0x3F7F07C1F07C1F08 // C5 1/132
DATA digc<>+264(SB)/8, $0x3F7F07C1F07C1F08 // C5 1/132
DATA digc<>+272(SB)/8, $0x3F7F07C1F07C1F08 // C5 1/132
DATA digc<>+280(SB)/8, $0x3F7F07C1F07C1F08 // C5 1/132
DATA digc<>+288(SB)/8, $0x4085980000000000 // B691 691.0
DATA digc<>+296(SB)/8, $0x4085980000000000 // B691 691.0
DATA digc<>+304(SB)/8, $0x4085980000000000 // B691 691.0
DATA digc<>+312(SB)/8, $0x4085980000000000 // B691 691.0
DATA digc<>+320(SB)/8, $0x40DFFE0000000000 // B32760 32760.0
DATA digc<>+328(SB)/8, $0x40DFFE0000000000 // B32760 32760.0
DATA digc<>+336(SB)/8, $0x40DFFE0000000000 // B32760 32760.0
DATA digc<>+344(SB)/8, $0x40DFFE0000000000 // B32760 32760.0
DATA digc<>+352(SB)/8, $0x7FF0000000000000 // POSINF
DATA digc<>+360(SB)/8, $0x7FF0000000000000 // POSINF
DATA digc<>+368(SB)/8, $0x7FF0000000000000 // POSINF
DATA digc<>+376(SB)/8, $0x7FF0000000000000 // POSINF
DATA digc<>+384(SB)/8, $0x000FFFFFFFFFFFFF // MANTMASK
DATA digc<>+392(SB)/8, $0x000FFFFFFFFFFFFF // MANTMASK
DATA digc<>+400(SB)/8, $0x000FFFFFFFFFFFFF // MANTMASK
DATA digc<>+408(SB)/8, $0x000FFFFFFFFFFFFF // MANTMASK
DATA digc<>+416(SB)/8, $0x4330000000000000 // MAGIC 2^52
DATA digc<>+424(SB)/8, $0x4330000000000000 // MAGIC 2^52
DATA digc<>+432(SB)/8, $0x4330000000000000 // MAGIC 2^52
DATA digc<>+440(SB)/8, $0x4330000000000000 // MAGIC 2^52
DATA digc<>+448(SB)/8, $0x408FF00000000000 // C1022 1022.0
DATA digc<>+456(SB)/8, $0x408FF00000000000 // C1022 1022.0
DATA digc<>+464(SB)/8, $0x408FF00000000000 // C1022 1022.0
DATA digc<>+472(SB)/8, $0x408FF00000000000 // C1022 1022.0
DATA digc<>+480(SB)/8, $0x3FE6A09E667F3BCD // HSQRT2
DATA digc<>+488(SB)/8, $0x3FE6A09E667F3BCD // HSQRT2
DATA digc<>+496(SB)/8, $0x3FE6A09E667F3BCD // HSQRT2
DATA digc<>+504(SB)/8, $0x3FE6A09E667F3BCD // HSQRT2
DATA digc<>+512(SB)/8, $0x3FE5555555555593 // L1
DATA digc<>+520(SB)/8, $0x3FE5555555555593 // L1
DATA digc<>+528(SB)/8, $0x3FE5555555555593 // L1
DATA digc<>+536(SB)/8, $0x3FE5555555555593 // L1
DATA digc<>+544(SB)/8, $0x3FD999999997FA04 // L2
DATA digc<>+552(SB)/8, $0x3FD999999997FA04 // L2
DATA digc<>+560(SB)/8, $0x3FD999999997FA04 // L2
DATA digc<>+568(SB)/8, $0x3FD999999997FA04 // L2
DATA digc<>+576(SB)/8, $0x3FD2492494229359 // L3
DATA digc<>+584(SB)/8, $0x3FD2492494229359 // L3
DATA digc<>+592(SB)/8, $0x3FD2492494229359 // L3
DATA digc<>+600(SB)/8, $0x3FD2492494229359 // L3
DATA digc<>+608(SB)/8, $0x3FCC71C51D8E78AF // L4
DATA digc<>+616(SB)/8, $0x3FCC71C51D8E78AF // L4
DATA digc<>+624(SB)/8, $0x3FCC71C51D8E78AF // L4
DATA digc<>+632(SB)/8, $0x3FCC71C51D8E78AF // L4
DATA digc<>+640(SB)/8, $0x3FC7466496CB03DE // L5
DATA digc<>+648(SB)/8, $0x3FC7466496CB03DE // L5
DATA digc<>+656(SB)/8, $0x3FC7466496CB03DE // L5
DATA digc<>+664(SB)/8, $0x3FC7466496CB03DE // L5
DATA digc<>+672(SB)/8, $0x3FC39A09D078C69F // L6
DATA digc<>+680(SB)/8, $0x3FC39A09D078C69F // L6
DATA digc<>+688(SB)/8, $0x3FC39A09D078C69F // L6
DATA digc<>+696(SB)/8, $0x3FC39A09D078C69F // L6
DATA digc<>+704(SB)/8, $0x3FC2F112DF3E5244 // L7
DATA digc<>+712(SB)/8, $0x3FC2F112DF3E5244 // L7
DATA digc<>+720(SB)/8, $0x3FC2F112DF3E5244 // L7
DATA digc<>+728(SB)/8, $0x3FC2F112DF3E5244 // L7
DATA digc<>+736(SB)/8, $0x3FE62E42FEE00000 // LN2HI
DATA digc<>+744(SB)/8, $0x3FE62E42FEE00000 // LN2HI
DATA digc<>+752(SB)/8, $0x3FE62E42FEE00000 // LN2HI
DATA digc<>+760(SB)/8, $0x3FE62E42FEE00000 // LN2HI
DATA digc<>+768(SB)/8, $0x3DEA39EF35793C76 // LN2LO
DATA digc<>+776(SB)/8, $0x3DEA39EF35793C76 // LN2LO
DATA digc<>+784(SB)/8, $0x3DEA39EF35793C76 // LN2LO
DATA digc<>+792(SB)/8, $0x3DEA39EF35793C76 // LN2LO
GLOBL digc<>(SB), RODATA|NOPTR, $800

DATA intc<>+0(SB)/8, $0x000003FF000003FF // D3FF 1023
DATA intc<>+8(SB)/8, $0x000003FF000003FF // D3FF 1023
DATA intc<>+16(SB)/8, $0x0000000100000001 // DONE 1
DATA intc<>+24(SB)/8, $0x0000000100000001 // DONE 1
DATA intc<>+32(SB)/8, $0x000007FE000007FE // D7FE 2046
DATA intc<>+40(SB)/8, $0x000007FE000007FE // D7FE 2046
DATA intc<>+48(SB)/8, $0xFFFFFFCCFFFFFFCC // DNEG52 -52
DATA intc<>+56(SB)/8, $0xFFFFFFCCFFFFFFCC // DNEG52 -52
DATA intc<>+64(SB)/8, $0x000003FE000003FE // D3FE 1022
DATA intc<>+72(SB)/8, $0x000003FE000003FE // D3FE 1022
GLOBL intc<>(SB), RODATA|NOPTR, $80

// func addStridedAsm(dst, src []float64, stride int)
// dst[i] += src[i*stride] — the panel-fill gather. Element-wise (no
// cross-element accumulation), so the 4-lane gather + VADDPD is
// bit-identical to the scalar loop. Handles the whole slice incl. tail.
// stride == 1 (transposed-cube panel fills) takes a contiguous path:
// full-width VMOVUPD loads instead of four scalar gathers.
TEXT ·addStridedAsm(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ stride+48(FP), R8
	CMPQ R8, $1
	JE   addcontig
	SHLQ $3, R8               // stride in bytes
	LEAQ (R8)(R8*1), R9       // 2·stride
	LEAQ (R9)(R8*1), R10      // 3·stride
	LEAQ (R9)(R9*1), R11      // 4·stride
	MOVQ CX, DX
	ANDQ $-4, DX
addstr4:
	CMPQ DX, $4
	JL   addstrtail
	VMOVSD (SI), X1
	VMOVSD (SI)(R8*1), X2
	VUNPCKLPD X2, X1, X1      // [s0, s1]
	VMOVSD (SI)(R9*1), X2
	VMOVSD (SI)(R10*1), X3
	VUNPCKLPD X3, X2, X2      // [s2, s3]
	VINSERTF128 $1, X2, Y1, Y1
	VADDPD (DI), Y1, Y1       // dst + gathered (payload-agnostic src1)
	VMOVUPD Y1, (DI)
	ADDQ R11, SI
	ADDQ $32, DI
	SUBQ $4, DX
	SUBQ $4, CX
	JMP  addstr4
addstrtail:
	TESTQ CX, CX
	JE   addstrdone
	VMOVSD (SI), X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ R8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  addstrtail
addstrdone:
	VZEROUPPER
	RET

addcontig:
	MOVQ CX, DX
	ANDQ $-4, DX
addcontig4:
	CMPQ DX, $4
	JL   addcontigtail
	VMOVUPD (SI), Y1
	VADDPD (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, DX
	SUBQ $4, CX
	JMP  addcontig4
addcontigtail:
	TESTQ CX, CX
	JE   addcontigdone
	VMOVSD (SI), X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  addcontigtail
addcontigdone:
	VZEROUPPER
	RET

// func mulStridedFloorAsm(dst, src []float64, stride int, floor float64)
// dst[i] *= max(src[i*stride], floor) — the product-panel gather. The
// MAXPD operand order (src1 = floor) reproduces the scalar clamp exactly:
// f > v ? f : v, with NaN v surviving (unordered compares select src2).
TEXT ·mulStridedFloorAsm(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ stride+48(FP), R8
	MOVSD floor+56(FP), X15
	VBROADCASTSD X15, Y15
	SHLQ $3, R8
	LEAQ (R8)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R9)(R9*1), R11
	MOVQ CX, DX
	ANDQ $-4, DX
mulstr4:
	CMPQ DX, $4
	JL   mulstrtail
	VMOVSD (SI), X1
	VMOVSD (SI)(R8*1), X2
	VUNPCKLPD X2, X1, X1
	VMOVSD (SI)(R9*1), X2
	VMOVSD (SI)(R10*1), X3
	VUNPCKLPD X3, X2, X2
	VINSERTF128 $1, X2, Y1, Y1
	VMAXPD Y1, Y15, Y1        // max(v, floor), src1=floor
	VMULPD (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ R11, SI
	ADDQ $32, DI
	SUBQ $4, DX
	SUBQ $4, CX
	JMP  mulstr4
mulstrtail:
	TESTQ CX, CX
	JE   mulstrdone
	VMOVSD (SI), X1
	VMAXSD X1, X15, X1
	VMULSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ R8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  mulstrtail
mulstrdone:
	VZEROUPPER
	RET

// func axpyGatherSumAsm(a float64, src []float64, offs []int, y []float64)
// len(y) must be a positive multiple of 4; every offs[j]+len(y) <= len(src)
// (the exported wrapper validated). Per 4-lane group: the gather sum
// accumulates the offs runs in order from +0.0 (matching gatherSum's
// s := 0.0 — note +0.0 + -0.0 = +0.0 either way), then one VMULPD by a
// (src1=a, the scalar's a*s) and one VADDPD into y (src1=y, the scalar's
// y[i] + t). No FMA anywhere — two roundings, per the package contract.
TEXT ·axpyGatherSumAsm(SB), NOSPLIT, $0-80
	VBROADCASTSD a+0(FP), Y0
	MOVQ src_base+8(FP), SI
	MOVQ offs_base+32(FP), R12
	MOVQ offs_len+40(FP), R13
	MOVQ y_base+56(FP), DI
	MOVQ y_len+64(FP), CX
	SHLQ $3, CX               // end byte offset
	XORQ R15, R15             // i*8
ags4:
	VXORPS Y1, Y1, Y1         // gather sum, +0.0 lanes
	XORQ R14, R14
agsinner:
	CMPQ R14, R13
	JGE  agsmul
	MOVQ (R12)(R14*8), AX     // offs[j]
	SHLQ $3, AX
	ADDQ R15, AX              // byte offset of src[offs[j]+i]
	VADDPD (SI)(AX*1), Y1, Y1 // s += src[offs[j]+i], src1=acc
	INCQ R14
	JMP  agsinner
agsmul:
	VMULPD Y1, Y0, Y1         // a*s, src1=a
	VMOVUPD (DI)(R15*1), Y2
	VADDPD Y1, Y2, Y2         // y + a*s, src1=y
	VMOVUPD Y2, (DI)(R15*1)
	ADDQ $32, R15
	CMPQ R15, CX
	JLT  ags4
	VZEROUPPER
	RET

// func flooredDotGatherSumAsm(w, src []float64, offs []int, floor float64) float64
// len(w) must be a positive multiple of 4; every offs[j]+len(w) <= len(src).
// Same canonical 4-lane accumulation and (s0+s2)+(s1+s3) combine as
// flooredDotBlockAsm, with the gather sum in x's role. Fully-floored lane
// groups (VPTEST on the mask) skip the gather entirely and add an explicit
// +0.0 vector — bit-identical to four blended-to-zero lanes, and the reason
// this kernel keeps the scalar fallback's floor-driven sparsity: near-one-hot
// κ rows cost one compare per group, not |offs| adds.
TEXT ·flooredDotGatherSumAsm(SB), NOSPLIT, $0-88
	MOVQ w_base+0(FP), BX
	MOVQ w_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ offs_base+48(FP), R12
	MOVQ offs_len+56(FP), R13
	VBROADCASTSD floor+72(FP), Y3
	VXORPS Y0, Y0, Y0         // lane accumulators
	SHLQ $3, CX
	XORQ R15, R15             // i*8
fdgs4:
	VMOVUPD (BX)(R15*1), Y1   // w
	VCMPPD  $0x0D, Y3, Y1, Y4 // mask = w >= floor (GE_OS: NaN -> false)
	VXORPS  Y2, Y2, Y2        // products: +0.0 until proven otherwise
	VPTEST  Y4, Y4
	JE      fdgsadd           // all four lanes floored: add the +0.0s
	XORQ R14, R14
fdgsinner:
	CMPQ R14, R13
	JGE  fdgsblend
	MOVQ (R12)(R14*8), AX
	SHLQ $3, AX
	ADDQ R15, AX
	VADDPD (SI)(AX*1), Y2, Y2 // s += src[offs[j]+i], src1=acc
	INCQ R14
	JMP  fdgsinner
fdgsblend:
	VMULPD Y2, Y1, Y2         // w*s, src1=w
	VANDPD Y4, Y2, Y2         // blend-to-zero: floored lanes add +0.0
fdgsadd:
	VADDPD Y2, Y0, Y0         // lane accumulate, src1=acc
	ADDQ $32, R15
	CMPQ R15, CX
	JLT  fdgs4
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+80(FP)
	RET

// func flooredDotGatherSumGroupsAsm(w, src []float64, offs []int, groups []int32, floor float64) float64
// The groups-restricted form of flooredDotGatherSumAsm: only the listed
// 4-lane groups of w's 4-aligned prefix are visited (the caller's
// FloorGroups scan found the rest fully floored; omitting their +0.0 adds
// is bit-neutral — see the Go wrapper's contract). Same per-group body and
// (s0+s2)+(s1+s3) combine as flooredDotGatherSumAsm.
TEXT ·flooredDotGatherSumGroupsAsm(SB), NOSPLIT, $0-112
	MOVQ w_base+0(FP), BX
	MOVQ src_base+24(FP), SI
	MOVQ offs_base+48(FP), R12
	MOVQ offs_len+56(FP), R13
	MOVQ groups_base+72(FP), R10
	MOVQ groups_len+80(FP), R11
	VBROADCASTSD floor+96(FP), Y3
	VXORPS Y0, Y0, Y0         // lane accumulators
	XORQ R9, R9               // index into groups
fdgg:
	CMPQ R9, R11
	JGE  fdggdone
	MOVLQSX (R10)(R9*4), AX   // g
	SHLQ $5, AX               // byte offset of w[4g]
	VMOVUPD (BX)(AX*1), Y1    // w group
	VCMPPD  $0x0D, Y3, Y1, Y4 // mask = w >= floor (GE_OS: NaN -> false)
	VXORPS  Y2, Y2, Y2        // products: +0.0 until proven otherwise
	VPTEST  Y4, Y4
	JE      fdggadd           // caller listed a fully-floored group: +0.0s
	MOVQ AX, R15              // i*8
	XORQ R14, R14
fdgginner:
	CMPQ R14, R13
	JGE  fdggblend
	MOVQ (R12)(R14*8), DX
	SHLQ $3, DX
	ADDQ R15, DX
	VADDPD (SI)(DX*1), Y2, Y2 // s += src[offs[j]+i], src1=acc
	INCQ R14
	JMP  fdgginner
fdggblend:
	VMULPD Y2, Y1, Y2         // w*s, src1=w
	VANDPD Y4, Y2, Y2         // blend-to-zero: floored lanes add +0.0
fdggadd:
	VADDPD Y2, Y0, Y0         // lane accumulate, src1=acc
	INCQ R9
	JMP  fdgg
fdggdone:
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+104(FP)
	RET

