//go:build arm64 && !purego

package mathx

import "cpa/internal/cpufeat"

// NEON backend registration and the Go halves of the split reduction
// kernels (kernels_arm64.s). Same structure as the amd64 backend: the
// assembly walks the 4-aligned prefix in the canonical lane order and the
// wrappers fold tails sequentially.
//
// Only the six pure-arithmetic kernels are vectorised on arm64. DigammaRow
// and LogSumExp stay on the scalar reference: their SIMD variants require
// replicating the platform math.Log/math.Exp algorithm lane-parallel
// (arm64's runtime uses different archExp/archLog code than amd64), and
// without arm64 hardware in the development loop a hand-replicated
// transcendental kernel cannot be bit-verified against the scalar oracle.
// The scalar fallback is always correct, merely slower; a future backend
// can upgrade these two pointers once it can run the equivalence suite.

// simdMinLen is the slice length below which the wrappers stay on the
// scalar reference — same pure-perf cutoff as the amd64 backend.
const simdMinLen = 8

//go:noescape
func axpyAsm(a float64, x, y []float64)

//go:noescape
func addScaledAsm(b, a float64, x, y []float64)

//go:noescape
func fillAsm(v []float64, x float64)

//go:noescape
func scaleAsm(v []float64, s float64)

//go:noescape
func sumBlockAsm(v []float64) float64

//go:noescape
func flooredDotBlockAsm(w, x []float64, floor float64) float64

func axpyNEON(a float64, x, y []float64) {
	if len(x) < simdMinLen {
		axpyScalar(a, x, y)
		return
	}
	axpyAsm(a, x, y)
}

func addScaledNEON(b, a float64, x, y []float64) {
	if len(x) < simdMinLen {
		addScaledScalar(b, a, x, y)
		return
	}
	addScaledAsm(b, a, x, y)
}

func fillNEON(v []float64, x float64) {
	if len(v) < simdMinLen {
		fillScalar(v, x)
		return
	}
	fillAsm(v, x)
}

func scaleNEON(v []float64, s float64) {
	if len(v) < simdMinLen {
		scaleScalar(v, s)
		return
	}
	scaleAsm(v, s)
}

func sumNEON(v []float64) float64 {
	if len(v) < simdMinLen {
		return sumScalar(v)
	}
	n4 := len(v) &^ 3
	s := sumBlockAsm(v[:n4])
	for i := n4; i < len(v); i++ {
		s += v[i]
	}
	return s
}

func flooredDotNEON(w, x []float64, floor float64) float64 {
	if len(w) < simdMinLen {
		return flooredDotScalar(w, x, floor)
	}
	n4 := len(w) &^ 3
	s := flooredDotBlockAsm(w[:n4], x[:n4], floor)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * x[i])
		}
		s += p
	}
	return s
}

func registerSIMDBackends() {
	if !cpufeat.ARM64.HasNEON {
		return
	}
	// The strided gather kernels stay scalar on arm64 too: NEON has no
	// gather loads, so a vector version is lane-by-lane LD1 inserts with
	// no arithmetic density to amortise them — measure on hardware before
	// bothering. Element-wise contract means scalar is bit-identical.
	backends = append(backends, kernelImpl{
		name:            "neon",
		axpy:            axpyNEON,
		addScaled:       addScaledNEON,
		fill:            fillNEON,
		scale:           scaleNEON,
		sum:             sumNEON,
		flooredDot:      flooredDotNEON,
		digammaRow:      digammaRowScalar,
		logSumExp:       logSumExpScalar,
		addStrided:      addStridedScalar,
		mulStridedFloor: mulStridedFloorScalar,

		axpyGatherSum:             axpyGatherSumScalar,
		flooredDotGatherSum:       flooredDotGatherSumScalar,
		flooredDotGatherSumGroups: flooredDotGatherSumGroupsScalar,
	})
}
