package mathx

import "math"

// This file is the repository's single home for the eight hot-loop vector
// kernels (ISSUE 6): the exported entry points every caller — internal/mat,
// internal/core, the baselines — routes through, plus the portable scalar
// reference implementations that double as the always-available fallback
// and the test oracle for the SIMD backends (dispatch.go, kernels_amd64.s,
// kernels_arm64.s).
//
// # Bit-exactness contract
//
// The kernels come in two classes:
//
//   - Element-wise kernels (Axpy, AddScaled, Fill, Scale, DigammaRow): no
//     cross-element accumulation, so any vectorisation is bit-identical to
//     the scalar loop as long as each element sees the same operation
//     sequence. The one hazard is fused multiply-add: an FMA contracts
//     a*x+y into one rounding where the contract requires two, so the
//     scalar loops force the intermediate rounding with a float64()
//     conversion (the Go-spec idiom that forbids fusion — without it the
//     compiler fuses on arm64 and results would differ from amd64), and
//     the SIMD backends use separate vector mul + add instructions.
//
//   - Reduction kernels (Sum, FlooredDot, LogSumExp's max and exp-sum
//     passes): float addition is order-sensitive, so these define ONE
//     canonical reduction order — four strided lane accumulators over the
//     4-aligned prefix, lanes combined as (s0+s2)+(s1+s3), remainder folded
//     in sequentially — implemented identically here and in every SIMD
//     backend. The lane combine is exactly what a 4-lane vector register
//     reduces to via extract-high + vertical add + horizontal add, so the
//     SIMD path needs no scalar drain loop and the scalar path is the
//     specification. Masked entries (FlooredDot's floor) contribute an
//     explicit +0.0 to their lane rather than being skipped: a vector
//     blend-to-zero adds +0.0, and skipping would diverge from it when a
//     lane accumulator holds -0.0.
//
// DigammaRow and LogSumExp additionally evaluate math-library primitives
// (digamma's log, exp). Their SIMD backends replicate the platform libm
// algorithm instruction for instruction (see kernels_amd64.s), so backends
// agree bit-for-bit with the scalar reference *on the same platform*; across
// platforms these two kernels inherit whatever per-architecture exp/log the
// Go runtime ships (math.archExp/archLog differ between amd64 and arm64
// already today). The pure-arithmetic kernels are bit-identical everywhere.
//
// NaN *payload and sign* bits are excluded from the contract: any NaN
// result matches any NaN result. IEEE 754 leaves payload propagation to the
// implementation — x86 invents the "indefinite" NaN (sign bit set, zero
// payload) for Inf-Inf, and when two NaNs with different payloads meet in
// one add even the scalar result depends on which operand the compiler's
// register allocator made the destination. Whether a result IS NaN is fully
// specified and backends must agree on it; which NaN is not specifiable.

// Axpy computes y[i] += a*x[i] over the shorter of the two slices. Element-
// wise (no cross-element accumulation), so every backend is bit-identical
// to this scalar loop. The inference hot loops call it with equal-length
// row views.
func Axpy(a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return
	}
	active.axpy(a, x[:n], y[:n])
}

// AXPY computes v += a*x element-wise in place. It panics on length
// mismatch (a mismatch in an inference loop is a programming error).
func AXPY(a float64, x, v []float64) {
	if len(x) != len(v) {
		panic("mathx: AXPY length mismatch")
	}
	if len(x) == 0 {
		return
	}
	active.axpy(a, x, v)
}

// AddScaled computes y[i] = y[i]*b + a*x[i] element-wise over the shorter
// of the two slices (the fused form of the SVI blending updates), equally
// bit-stable across backends.
func AddScaled(b, a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return
	}
	active.addScaled(b, a, x[:n], y[:n])
}

// Fill sets every element of v to x and returns v for chaining.
func Fill(v []float64, x float64) []float64 {
	if len(v) > 0 {
		active.fill(v, x)
	}
	return v
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	if len(v) > 0 {
		active.scale(v, s)
	}
}

// Sum returns the sum of v in the canonical 4-lane-strided reduction order
// (see the package bit-exactness contract). Inference accumulators use
// plain summation; Kahan compensation is available via KahanSum where the
// extra accuracy matters (ELBO bookkeeping).
func Sum(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return active.sum(v)
}

// FlooredDot returns Σ_i w[i]·x[i] over entries with w[i] >= floor — the
// respFloor-guarded community reductions of the score kernels — over the
// shorter of the two slices, accumulated in the canonical 4-lane-strided
// order. Entries under the floor contribute an explicit +0.0 to their lane
// (blend semantics), so SIMD masking is bit-identical.
func FlooredDot(w, x []float64, floor float64) float64 {
	n := len(w)
	if len(x) < n {
		n = len(x)
	}
	if n == 0 {
		return 0
	}
	return active.flooredDot(w[:n], x[:n], floor)
}

// DigammaRow fills dst[i] = ψ(x[i]) over the shorter of the two slices —
// the vectorised form the expectation refresh walks the λ cube with. Each
// entry computes the same per-element evaluation as Digamma (the SIMD
// backends replicate it lane-parallel, including the platform math.Log),
// so results are bit-identical to a caller-side scalar loop.
func DigammaRow(x, dst []float64) {
	n := len(x)
	if len(dst) < n {
		n = len(dst)
	}
	if n == 0 {
		return
	}
	active.digammaRow(x[:n], dst[:n])
}

// AddStrided computes dst[i] += src[i*stride] — the strided gather the
// label-set panel fills walk the ψ cube with (one pass per set member,
// contiguous writes, stride-C reads). Element-wise, so every backend is
// bit-identical to the scalar loop. Panics when src is too short for the
// stride (a programming error at the panel layer).
func AddStrided(dst, src []float64, stride int) {
	if len(dst) == 0 {
		return
	}
	if stride < 1 || len(src) < (len(dst)-1)*stride+1 {
		panic("mathx: AddStrided stride/length mismatch")
	}
	active.addStrided(dst, src, stride)
}

// MulStridedFloor computes dst[i] *= max(src[i*stride], floor) — the
// product-panel fill, where cube entries are clamped to a tiny positive
// floor before multiplying. The clamp keeps the scalar semantics
// exactly: v if v >= floor (and for NaN v), else floor.
func MulStridedFloor(dst, src []float64, stride int, floor float64) {
	if len(dst) == 0 {
		return
	}
	if stride < 1 || len(src) < (len(dst)-1)*stride+1 {
		panic("mathx: MulStridedFloor stride/length mismatch")
	}
	active.mulStridedFloor(dst, src, stride, floor)
}

// AxpyGatherSum computes y[i] += a · Σ_j src[offs[j]+i] — the fused form
// of "build a panel row from |offs| contiguous cube runs, then AXPY it":
// one pass, no intermediate stores. The inner sum runs over offs in order
// starting from 0.0 (the canonical member order of the panel fills), and
// a·sum rounds once before the add into y — exactly the scalar fallback's
// dst[m] += float64(w*s). Element-wise over i, so every backend is
// bit-identical. Panics when an offset would read past src (a programming
// error at the panel layer).
func AxpyGatherSum(a float64, src []float64, offs []int, y []float64) {
	if len(y) == 0 {
		return
	}
	for _, o := range offs {
		if o < 0 || o+len(y) > len(src) {
			panic("mathx: AxpyGatherSum offset out of range")
		}
	}
	active.axpyGatherSum(a, src, offs, y)
}

// FlooredDotGatherSum returns Σ_i w[i]·(Σ_j src[offs[j]+i]) over entries
// with w[i] >= floor — FlooredDot with the gather-sum playing the panel
// entry's role, fused into one pass. The reduction over i uses the
// canonical 4-lane-strided order with floored entries contributing an
// explicit +0.0 (see the package contract); each surviving entry's inner
// sum runs over offs in order starting from 0.0, and w·sum rounds once.
// Panics when an offset would read past src.
func FlooredDotGatherSum(w, src []float64, offs []int, floor float64) float64 {
	if len(w) == 0 {
		return 0
	}
	for _, o := range offs {
		if o < 0 || o+len(w) > len(src) {
			panic("mathx: FlooredDotGatherSum offset out of range")
		}
	}
	return active.flooredDotGatherSum(w, src, offs, floor)
}

// FloorGroups appends to buf[:0] the index of every 4-element lane group
// of w — group g spans w[4g:4g+4] — holding at least one entry >= floor,
// in increasing order. It is the precomputation step for
// FlooredDotGatherSumGroups: the score kernels scan a responsibility row
// once per answer instead of once per (answer, cluster). Tail entries past
// the 4-aligned prefix are not grouped (every kernel folds them in
// unconditionally). Not backend-dispatched: the scan is branchy and runs
// once per row, not per reduction.
func FloorGroups(w []float64, floor float64, buf []int32) []int32 {
	buf = buf[:0]
	n4 := len(w) &^ 3
	for i := 0; i < n4; i += 4 {
		if w[i] >= floor || w[i+1] >= floor || w[i+2] >= floor || w[i+3] >= floor {
			buf = append(buf, int32(i>>2))
		}
	}
	return buf
}

// FlooredDotGatherSumGroups is FlooredDotGatherSum restricted to the listed
// 4-element lane groups of the 4-aligned prefix (tail entries are always
// folded in). groups must be increasing and must include every group with
// an entry passing the floor — FloorGroups(w, floor, …) is the canonical
// producer; extra (fully-floored) groups are harmless. The result is
// bit-identical to FlooredDotGatherSum over the full row: an omitted group
// contributes an explicit +0.0 to each lane accumulator, and a lane that
// starts at +0.0 can never reach -0.0 (x + (-x) rounds to +0.0, and
// ±0.0 + ±0.0 is -0.0 only when both operands are -0.0), so dropping the
// +0.0 add leaves every accumulator's bits unchanged. Panics on an
// out-of-range offset or group index.
func FlooredDotGatherSumGroups(w, src []float64, offs []int, groups []int32, floor float64) float64 {
	if len(w) == 0 {
		return 0
	}
	for _, o := range offs {
		if o < 0 || o+len(w) > len(src) {
			panic("mathx: FlooredDotGatherSumGroups offset out of range")
		}
	}
	// Group indices are not pre-scanned here: the scalar reference indexes
	// w[4g] under the runtime's bounds checks, and the asm wrappers validate
	// the list themselves before entering unchecked code. Hot callers invoke
	// this once per cluster with the same groups list, so an O(|groups|)
	// scan per call would rival the kernel itself on dense rows.
	return active.flooredDotGatherSumGroups(w, src, offs, groups, floor)
}

// LogSumExp returns ln Σ exp(v_i) computed stably: the running maximum is
// subtracted before exponentiating. An empty slice yields negative infinity
// (the log of an empty sum). Both passes — the max scan and the exp-sum —
// use the canonical 4-lane-strided reduction order.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	return active.logSumExp(v)
}

// ---------------------------------------------------------------------------
// Scalar reference implementations (the canonical specification)
// ---------------------------------------------------------------------------

// axpyScalar: y[i] += a*x[i], 4-way unrolled. The float64() conversions pin
// the product's intermediate rounding (no FMA contraction — see the package
// contract); on amd64 they are no-ops, on arm64 they stop the compiler
// emitting FMADDD.
func axpyScalar(a float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += float64(a * x[i])
		y[i+1] += float64(a * x[i+1])
		y[i+2] += float64(a * x[i+2])
		y[i+3] += float64(a * x[i+3])
	}
	for ; i < len(x); i++ {
		y[i] += float64(a * x[i])
	}
}

// addScaledScalar: y[i] = y[i]*b + a*x[i], element-wise, no contraction.
func addScaledScalar(b, a float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] = float64(y[i]*b) + float64(a*x[i])
		y[i+1] = float64(y[i+1]*b) + float64(a*x[i+1])
		y[i+2] = float64(y[i+2]*b) + float64(a*x[i+2])
		y[i+3] = float64(y[i+3]*b) + float64(a*x[i+3])
	}
	for ; i < len(x); i++ {
		y[i] = float64(y[i]*b) + float64(a*x[i])
	}
}

func fillScalar(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

func scaleScalar(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// sumScalar is the canonical 4-lane-strided sum.
func sumScalar(v []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(v) &^ 3
	for i := 0; i < n4; i += 4 {
		s0 += v[i]
		s1 += v[i+1]
		s2 += v[i+2]
		s3 += v[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n4; i < len(v); i++ {
		s += v[i]
	}
	return s
}

// flooredDotScalar is the canonical 4-lane-strided floored dot. Masked
// entries add +0.0 (never skipped): the SIMD blend adds +0.0 too, and
// -0.0 + +0.0 = +0.0 means a skip would diverge on -0.0 accumulators.
func flooredDotScalar(w, x []float64, floor float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(w) &^ 3
	for i := 0; i < n4; i += 4 {
		p0, p1, p2, p3 := 0.0, 0.0, 0.0, 0.0
		if w[i] >= floor {
			p0 = float64(w[i] * x[i])
		}
		if w[i+1] >= floor {
			p1 = float64(w[i+1] * x[i+1])
		}
		if w[i+2] >= floor {
			p2 = float64(w[i+2] * x[i+2])
		}
		if w[i+3] >= floor {
			p3 = float64(w[i+3] * x[i+3])
		}
		s0 += p0
		s1 += p1
		s2 += p2
		s3 += p3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * x[i])
		}
		s += p
	}
	return s
}

// addStridedScalar: dst[i] += src[i*stride]. Element-wise; the exported
// wrapper has validated the stride.
func addStridedScalar(dst, src []float64, stride int) {
	for i := range dst {
		dst[i] += src[i*stride]
	}
}

// mulStridedFloorScalar: dst[i] *= max(src[i*stride], floor), where the
// clamp keeps v when v >= floor or v is NaN — the exact semantics of the
// hardware MAXPD with the floor as first source, which is what lets the
// SIMD backend match bit-for-bit.
func mulStridedFloorScalar(dst, src []float64, stride int, floor float64) {
	for i := range dst {
		v := src[i*stride]
		if v < floor {
			v = floor
		}
		dst[i] *= v
	}
}

// gatherSum is the inner sum both gather kernels share: Σ_j src[offs[j]+i],
// accumulated sequentially in offs order from 0.0 (panel-fill order — the
// bits every backend must reproduce per element).
func gatherSum(src []float64, offs []int, i int) float64 {
	s := 0.0
	for _, o := range offs {
		s += src[o+i]
	}
	return s
}

// axpyGatherSumScalar: y[i] += a·gatherSum(i), element-wise, with the
// product's intermediate rounding pinned (no FMA contraction).
func axpyGatherSumScalar(a float64, src []float64, offs []int, y []float64) {
	for i := range y {
		y[i] += float64(a * gatherSum(src, offs, i))
	}
}

// flooredDotGatherSumScalar mirrors flooredDotScalar's canonical 4-lane
// structure exactly, with the gather-sum in x's role. The sum is computed
// lazily — only for entries passing the floor — which the SIMD backends
// match by skipping the gather for fully-masked lane groups (masked lanes
// of a mixed group compute and then blend to +0.0, same bits either way).
func flooredDotGatherSumScalar(w, src []float64, offs []int, floor float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(w) &^ 3
	for i := 0; i < n4; i += 4 {
		p0, p1, p2, p3 := 0.0, 0.0, 0.0, 0.0
		if w[i] >= floor {
			p0 = float64(w[i] * gatherSum(src, offs, i))
		}
		if w[i+1] >= floor {
			p1 = float64(w[i+1] * gatherSum(src, offs, i+1))
		}
		if w[i+2] >= floor {
			p2 = float64(w[i+2] * gatherSum(src, offs, i+2))
		}
		if w[i+3] >= floor {
			p3 = float64(w[i+3] * gatherSum(src, offs, i+3))
		}
		s0 += p0
		s1 += p1
		s2 += p2
		s3 += p3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n4; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * gatherSum(src, offs, i))
		}
		s += p
	}
	return s
}

// flooredDotGatherSumGroupsScalar: the canonical 4-lane reduction walked
// over the listed groups only. Each group's lane updates are exactly
// flooredDotScalar's for that block, so inclusion of a fully-floored group
// (+0.0 per lane) and omission produce the same bits — see the exported
// wrapper's contract.
func flooredDotGatherSumGroupsScalar(w, src []float64, offs []int, groups []int32, floor float64) float64 {
	var s0, s1, s2, s3 float64
	for _, g := range groups {
		i := int(g) * 4
		p0, p1, p2, p3 := 0.0, 0.0, 0.0, 0.0
		if w[i] >= floor {
			p0 = float64(w[i] * gatherSum(src, offs, i))
		}
		if w[i+1] >= floor {
			p1 = float64(w[i+1] * gatherSum(src, offs, i+1))
		}
		if w[i+2] >= floor {
			p2 = float64(w[i+2] * gatherSum(src, offs, i+2))
		}
		if w[i+3] >= floor {
			p3 = float64(w[i+3] * gatherSum(src, offs, i+3))
		}
		s0 += p0
		s1 += p1
		s2 += p2
		s3 += p3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := len(w) &^ 3; i < len(w); i++ {
		p := 0.0
		if w[i] >= floor {
			p = float64(w[i] * gatherSum(src, offs, i))
		}
		s += p
	}
	return s
}

func digammaRowScalar(x, dst []float64) {
	for i := range x {
		dst[i] = Digamma(x[i])
	}
}

// fmax is the IEEE max-with-second-operand-ties primitive every backend's
// max scan is built from: a if a > b, else b — so NaN a is skipped (keeps
// b), NaN b propagates, and ±0 ties keep b. It matches the hardware MAXPD
// (and NEON FCMGT+select) semantics exactly, which is what lets the vector
// lane scan and this scalar loop produce identical bits.
func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// maxStrided is the canonical 4-lane-strided max scan: lane j holds the
// running fmax of elements j, j+4, …; lanes combine as
// fmax(fmax(m3,m1), fmax(m2,m0)); the remainder folds in sequentially.
func maxStrided(v []float64) float64 {
	ninf := math.Inf(-1)
	m0, m1, m2, m3 := ninf, ninf, ninf, ninf
	n4 := len(v) &^ 3
	for i := 0; i < n4; i += 4 {
		m0 = fmax(v[i], m0)
		m1 = fmax(v[i+1], m1)
		m2 = fmax(v[i+2], m2)
		m3 = fmax(v[i+3], m3)
	}
	m := fmax(fmax(m3, m1), fmax(m2, m0))
	for i := n4; i < len(v); i++ {
		m = fmax(v[i], m)
	}
	return m
}

// expSumStrided is the canonical 4-lane-strided Σ exp(v_i - maxv).
func expSumStrided(v []float64, maxv float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(v) &^ 3
	for i := 0; i < n4; i += 4 {
		s0 += math.Exp(v[i] - maxv)
		s1 += math.Exp(v[i+1] - maxv)
		s2 += math.Exp(v[i+2] - maxv)
		s3 += math.Exp(v[i+3] - maxv)
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n4; i < len(v); i++ {
		s += math.Exp(v[i] - maxv)
	}
	return s
}

// logSumExpScalar composes the two canonical passes. Callers guarantee
// len(v) > 0.
func logSumExpScalar(v []float64) float64 {
	maxv := maxStrided(v)
	if math.IsInf(maxv, -1) {
		return maxv
	}
	return maxv + math.Log(expSumStrided(v, maxv))
}
