//go:build arm64 && !purego

#include "textflag.h"

// NEON (ASIMD) kernels for the six pure-arithmetic entry points. Layout
// mirrors kernels_amd64.s: element-wise kernels process the whole slice
// (vector body + in-asm scalar tail); the reduction kernels process only
// the 4-aligned prefix and the Go wrappers fold tails in sequentially.
//
// The canonical 4-lane-strided reduction order (see kernels.go) maps onto
// 2-lane NEON as two Q-register accumulators per step-4 iteration:
// V0 = [s0, s1], V1 = [s2, s3]. The combine FADD V1, V0 yields
// [s0+s2, s1+s3] and the scalar FADDP collapses it to (s0+s2)+(s1+s3) —
// exactly the canonical lane combine, so results are bit-identical to the
// scalar reference.
//
// The Go assembler has no unfused vector FP mnemonics on arm64 (only the
// fused VFMLA/VFMLS, which the no-FMA contract forbids), so the four FP
// vector instructions are emitted as raw encodings through the macros
// below and verified by `go tool objdump` (whose arm64 decoder is
// independent of the assembler). Operand convention matches Go arm64
// order: (Vm, Vn, Vd) with Vd = Vn OP Vm.

// Vd.2D = Vn.2D + Vm.2D
#define VFADD2D(m, n, d) WORD $(0x4E60D400 | (m)<<16 | (n)<<5 | (d))
// Vd.2D = Vn.2D * Vm.2D
#define VFMUL2D(m, n, d) WORD $(0x6E60DC00 | (m)<<16 | (n)<<5 | (d))
// Vd.2D = all-ones mask where Vn.2D >= Vm.2D (false on NaN), else zero
#define VFCMGE2D(m, n, d) WORD $(0x6E60E400 | (m)<<16 | (n)<<5 | (d))
// Dd = Vn.D[0] + Vn.D[1] (scalar pairwise add)
#define FADDP2D(n, d) WORD $(0x7E70D800 | (n)<<5 | (d))

// func axpyAsm(a float64, x, y []float64)
// y[i] += a*x[i]; vector mul then add, never fused.
TEXT ·axpyAsm(SB), NOSPLIT, $0-56
	FMOVD a+0(FP), F0
	VDUP  V0.D[0], V0.D2
	MOVD  x_base+8(FP), R1
	MOVD  x_len+16(FP), R3
	MOVD  y_base+32(FP), R2

axpy_loop4:
	CMP   $4, R3
	BLT   axpy_tail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1  (R2), [V3.D2, V4.D2]
	VFMUL2D(0, 1, 5)              // V5 = x01 * a
	VFMUL2D(0, 2, 6)              // V6 = x23 * a
	VFADD2D(5, 3, 3)              // V3 = y01 + V5
	VFADD2D(6, 4, 4)              // V4 = y23 + V6
	VST1.P [V3.D2, V4.D2], 32(R2)
	SUB   $4, R3
	B     axpy_loop4

axpy_tail:
	CBZ   R3, axpy_done
	FMOVD (R1), F1
	FMOVD (R2), F2
	FMULD F0, F1, F1
	FADDD F1, F2, F2
	FMOVD F2, (R2)
	ADD   $8, R1
	ADD   $8, R2
	SUB   $1, R3
	B     axpy_tail

axpy_done:
	RET

// func addScaledAsm(b, a float64, x, y []float64)
// y[i] = y[i]*b + a*x[i]; two rounded products, one add.
TEXT ·addScaledAsm(SB), NOSPLIT, $0-64
	FMOVD b+0(FP), F0
	VDUP  V0.D[0], V0.D2
	FMOVD a+8(FP), F1
	VDUP  V1.D[0], V1.D2
	MOVD  x_base+16(FP), R1
	MOVD  x_len+24(FP), R3
	MOVD  y_base+40(FP), R2

as_loop4:
	CMP   $4, R3
	BLT   as_tail
	VLD1.P 32(R1), [V2.D2, V3.D2]
	VLD1  (R2), [V4.D2, V5.D2]
	VFMUL2D(1, 2, 6)              // V6 = x01 * a
	VFMUL2D(1, 3, 7)              // V7 = x23 * a
	VFMUL2D(0, 4, 4)              // V4 = y01 * b
	VFMUL2D(0, 5, 5)              // V5 = y23 * b
	VFADD2D(6, 4, 4)              // V4 = y01*b + a*x01
	VFADD2D(7, 5, 5)
	VST1.P [V4.D2, V5.D2], 32(R2)
	SUB   $4, R3
	B     as_loop4

as_tail:
	CBZ   R3, as_done
	FMOVD (R1), F2
	FMOVD (R2), F3
	FMULD F1, F2, F2              // a*x
	FMULD F0, F3, F3              // y*b
	FADDD F2, F3, F3
	FMOVD F3, (R2)
	ADD   $8, R1
	ADD   $8, R2
	SUB   $1, R3
	B     as_tail

as_done:
	RET

// func fillAsm(v []float64, x float64)
TEXT ·fillAsm(SB), NOSPLIT, $0-32
	MOVD  v_base+0(FP), R1
	MOVD  v_len+8(FP), R3
	FMOVD x+24(FP), F0
	VDUP  V0.D[0], V0.D2
	VMOV  V0.B16, V1.B16

fill_loop4:
	CMP   $4, R3
	BLT   fill_tail
	VST1.P [V0.D2, V1.D2], 32(R1)
	SUB   $4, R3
	B     fill_loop4

fill_tail:
	CBZ   R3, fill_done
	FMOVD F0, (R1)
	ADD   $8, R1
	SUB   $1, R3
	B     fill_tail

fill_done:
	RET

// func scaleAsm(v []float64, s float64)
TEXT ·scaleAsm(SB), NOSPLIT, $0-32
	MOVD  v_base+0(FP), R1
	MOVD  v_len+8(FP), R3
	FMOVD s+24(FP), F0
	VDUP  V0.D[0], V0.D2

scale_loop4:
	CMP   $4, R3
	BLT   scale_tail
	VLD1  (R1), [V1.D2, V2.D2]
	VFMUL2D(0, 1, 1)              // V1 = v01 * s
	VFMUL2D(0, 2, 2)
	VST1.P [V1.D2, V2.D2], 32(R1)
	SUB   $4, R3
	B     scale_loop4

scale_tail:
	CBZ   R3, scale_done
	FMOVD (R1), F1
	FMULD F0, F1, F1
	FMOVD F1, (R1)
	ADD   $8, R1
	SUB   $1, R3
	B     scale_tail

scale_done:
	RET

// func sumBlockAsm(v []float64) float64
// len(v) is a multiple of 4 (the wrapper passes v[:n&^3]). Canonical
// 4-lane-strided sum over the block; the wrapper folds any tail.
TEXT ·sumBlockAsm(SB), NOSPLIT, $0-32
	MOVD  v_base+0(FP), R1
	MOVD  v_len+8(FP), R3
	VEOR  V0.B16, V0.B16, V0.B16  // [s0, s1]
	VEOR  V1.B16, V1.B16, V1.B16  // [s2, s3]

sum_loop4:
	CBZ   R3, sum_combine
	VLD1.P 32(R1), [V2.D2, V3.D2]
	VFADD2D(2, 0, 0)              // V0 += v[i:i+2]
	VFADD2D(3, 1, 1)              // V1 += v[i+2:i+4]
	SUB   $4, R3
	B     sum_loop4

sum_combine:
	VFADD2D(1, 0, 0)              // [s0+s2, s1+s3]
	FADDP2D(0, 0)                 // (s0+s2) + (s1+s3)
	FMOVD F0, ret+24(FP)
	RET

// func flooredDotBlockAsm(w, x []float64, floor float64) float64
// len(w) == len(x), a multiple of 4. Masked lanes (w < floor, or w NaN —
// FCMGE is false on unordered) contribute +0.0 via the AND-to-zero blend,
// matching the scalar reference's explicit +0.0 adds.
TEXT ·flooredDotBlockAsm(SB), NOSPLIT, $0-64
	MOVD  w_base+0(FP), R1
	MOVD  w_len+8(FP), R3
	MOVD  x_base+24(FP), R2
	FMOVD floor+48(FP), F15
	VDUP  V15.D[0], V15.D2
	VEOR  V0.B16, V0.B16, V0.B16  // [s0, s1]
	VEOR  V1.B16, V1.B16, V1.B16  // [s2, s3]

fdot_loop4:
	CBZ   R3, fdot_combine
	VLD1.P 32(R1), [V2.D2, V3.D2] // w
	VLD1.P 32(R2), [V4.D2, V5.D2] // x
	VFMUL2D(4, 2, 6)              // V6 = w01 * x01
	VFMUL2D(5, 3, 7)              // V7 = w23 * x23
	VFCMGE2D(15, 2, 8)            // V8 = w01 >= floor
	VFCMGE2D(15, 3, 9)
	VAND  V8.B16, V6.B16, V6.B16
	VAND  V9.B16, V7.B16, V7.B16
	VFADD2D(6, 0, 0)
	VFADD2D(7, 1, 1)
	SUB   $4, R3
	B     fdot_loop4

fdot_combine:
	VFADD2D(1, 0, 0)
	FADDP2D(0, 0)
	FMOVD F0, ret+56(FP)
	RET
