package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestSampleCategoricalDeterminism pins the simulator's determinism
// contract: identical seeds must reproduce identical draw sequences.
func TestSampleCategoricalDeterminism(t *testing.T) {
	weights := []float64{0.5, 2, 0, 1.25, 3}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if x, y := SampleCategorical(a, weights), SampleCategorical(b, weights); x != y {
			t.Fatalf("draw %d diverged under the same seed: %d vs %d", i, x, y)
		}
	}
}

// TestSampleCategoricalFrequencies checks CDF inversion against the exact
// probabilities: empirical frequencies over many draws must match the
// normalised weights within a loose binomial tolerance.
func TestSampleCategoricalFrequencies(t *testing.T) {
	weights := []float64{1, 3, 0, 6} // p = 0.1, 0.3, 0, 0.6
	const n = 200000
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		k := SampleCategorical(rng, weights)
		if k < 0 || k >= len(weights) {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[2])
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}

// TestSampleCategoricalDegenerate covers the uniform fallbacks: empty,
// all-zero, negative, and non-finite weight vectors.
func TestSampleCategoricalDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := SampleCategorical(rng, nil); got != 0 {
		t.Fatalf("empty weights drew %d, want 0", got)
	}
	for _, weights := range [][]float64{
		{0, 0, 0},
		{-1, -2, -3},
		// An infinite weight makes the total non-finite: uniform fallback.
		{math.Inf(1), 1, 1},
	} {
		counts := make([]int, len(weights))
		for i := 0; i < 30000; i++ {
			k := SampleCategorical(rng, weights)
			if k < 0 || k >= len(weights) {
				t.Fatalf("weights %v: draw %d out of range", weights, k)
			}
			counts[k]++
		}
		for i, c := range counts {
			got := float64(c) / 30000
			if math.Abs(got-1.0/3) > 0.02 {
				t.Errorf("weights %v: fallback not uniform, index %d frequency %.4f", weights, i, got)
			}
		}
	}
	// Single-element vectors always draw index 0.
	if got := SampleCategorical(rng, []float64{5}); got != 0 {
		t.Fatalf("single weight drew %d, want 0", got)
	}

	// A NaN weight is treated as zero: the finite weights keep their
	// relative probabilities and the NaN index is never drawn.
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[SampleCategorical(rng, []float64{math.NaN(), 1, 1})]++
	}
	if counts[0] != 0 {
		t.Fatalf("NaN-weight index drawn %d times", counts[0])
	}
	for i := 1; i < 3; i++ {
		if got := float64(counts[i]) / 30000; math.Abs(got-0.5) > 0.02 {
			t.Errorf("NaN vector: index %d frequency %.4f, want 0.5", i, got)
		}
	}
}

// TestPoissonDeterminism pins Poisson draws under a fixed seed.
func TestPoissonDeterminism(t *testing.T) {
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		mean := 0.5 + float64(i%80) // crosses the mean>30 splitting path
		if x, y := Poisson(a, mean), Poisson(b, mean); x != y {
			t.Fatalf("draw %d (mean %.1f) diverged under the same seed: %d vs %d", i, mean, x, y)
		}
	}
}

// TestPoissonMoments checks the first two moments: for Poisson(λ) both the
// mean and the variance are λ. The large mean exercises the splitting path
// that keeps Knuth's running product away from underflow.
func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 75} {
		const n = 100000
		rng := rand.New(rand.NewSource(11))
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := Poisson(rng, mean)
			if k < 0 {
				t.Fatalf("mean %v: negative draw %d", mean, k)
			}
			x := float64(k)
			sum += x
			sumSq += x * x
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		// ~6 standard errors of the empirical mean (σ/√n = √(λ/n)).
		tol := 6 * math.Sqrt(mean/n)
		if math.Abs(gotMean-mean) > tol {
			t.Errorf("mean %v: empirical mean %.4f outside ±%.4f", mean, gotMean, tol)
		}
		if math.Abs(gotVar-mean) > 0.05*mean+tol {
			t.Errorf("mean %v: empirical variance %.4f, want ≈%.4f", mean, gotVar, mean)
		}
	}
}

// TestPoissonDegenerate covers the zero fallbacks for non-positive and
// non-finite means.
func TestPoissonDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0, -1, math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := Poisson(rng, mean); got != 0 {
			t.Fatalf("mean %v drew %d, want 0", mean, got)
		}
	}
}
