// Package dist provides the small random-sampling primitives the data
// simulator needs (categorical and Poisson draws). All functions take an
// explicit *rand.Rand so simulations stay deterministic under a seed.
package dist

import "math"
import "math/rand"

// SampleCategorical draws an index from the (unnormalised, non-negative)
// weight vector by CDF inversion. A zero-sum or empty weight vector falls
// back to a uniform draw over the indices (or 0 for an empty slice).
func SampleCategorical(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	for i, w := range weights {
		// !(w > 0) rather than w <= 0: NaN weights must be skipped here
		// too, or u -= NaN poisons the cursor and the loop falls through
		// to the last index regardless of the draw.
		if !(w > 0) {
			continue
		}
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's multiplication method, which is exact and fast for the small
// means the simulator uses (truth-set sizes, answers per item). A
// non-positive or non-finite mean yields 0.
func Poisson(rng *rand.Rand, mean float64) int {
	if !(mean > 0) || math.IsInf(mean, 0) {
		return 0
	}
	// For large means, split the draw to keep the running product away
	// from underflow: Poisson(a+b) = Poisson(a) + Poisson(b).
	n := 0
	for mean > 30 {
		n += Poisson(rng, 30)
		mean -= 30
	}
	limit := math.Exp(-mean)
	p := rng.Float64()
	for p > limit {
		n++
		p *= rng.Float64()
	}
	return n
}
