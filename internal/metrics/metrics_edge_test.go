package metrics

import (
	"math"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// TestItemPREdgeCases is the table-driven sweep of the ItemPR corner
// conventions: empty predictions, empty truth, partial overlap in both
// directions, and singleton universes.
func TestItemPREdgeCases(t *testing.T) {
	cases := []struct {
		name         string
		truth, pred  []int
		wantP, wantR float64
	}{
		{"empty prediction, non-empty truth", []int{1, 2}, nil, 0, 0},
		{"empty prediction, empty truth", nil, nil, 1, 1},
		{"non-empty prediction, empty truth", nil, []int{3}, 0, 1},
		{"exact singleton match", []int{0}, []int{0}, 1, 1},
		{"singleton mismatch", []int{0}, []int{1}, 0, 0},
		{"prediction strictly inside truth", []int{1, 2, 3, 4}, []int{2, 3}, 1, 0.5},
		{"truth strictly inside prediction", []int{2, 3}, []int{1, 2, 3, 4}, 0.5, 1},
		{"half overlap both ways", []int{1, 2}, []int{2, 3}, 0.5, 0.5},
		{"disjoint sets", []int{1, 2}, []int{3, 4}, 0, 0},
		{"one-third precision", []int{7}, []int{5, 6, 7}, 1.0 / 3, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, r := ItemPR(labelset.FromSlice(c.truth), labelset.FromSlice(c.pred))
			if math.Abs(p-c.wantP) > 1e-12 || math.Abs(r-c.wantR) > 1e-12 {
				t.Fatalf("ItemPR = (%v, %v), want (%v, %v)", p, r, c.wantP, c.wantR)
			}
		})
	}
}

// mustDataset builds a small dataset with explicit truth for Evaluate
// edge-case tables.
func mustDataset(t *testing.T, items, workers, labels int) *answers.Dataset {
	t.Helper()
	ds, err := answers.NewDataset("edge", items, workers, labels)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestEvaluateEmptyPredictions pins that a nil (zero-value) prediction set
// scores as an empty assertion: precision contributes the empty-prediction
// convention, recall 0 on non-empty truth.
func TestEvaluateEmptyPredictions(t *testing.T) {
	ds := mustDataset(t, 2, 1, 3)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(1, labelset.Of(2)); err != nil {
		t.Fatal(err)
	}
	// Both predictions are zero-value sets (never touched): an empty
	// prediction against non-empty truth scores P=0, R=0.
	pr, err := Evaluate(ds, make([]labelset.Set, ds.NumItems))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Items != 2 || pr.Precision != 0 || pr.Recall != 0 {
		t.Fatalf("empty predictions: %+v, want P=0 R=0 over 2 items", pr)
	}
}

// TestEvaluatePartialOverlap pins exact fractional averages over items with
// different overlap ratios, including an item with no truth (skipped).
func TestEvaluatePartialOverlap(t *testing.T) {
	ds := mustDataset(t, 3, 1, 5)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0, 1)); err != nil { // pred {0,2}: P=1/2 R=1/2
		t.Fatal(err)
	}
	if err := ds.SetTruth(2, labelset.Of(0, 1, 2, 3)); err != nil { // pred {0,1}: P=1 R=1/2
		t.Fatal(err)
	}
	pred := []labelset.Set{labelset.Of(0, 2), labelset.Of(4), labelset.Of(0, 1)}
	pr, err := Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Items != 2 {
		t.Fatalf("covered %d items, want 2 (item 1 has no truth)", pr.Items)
	}
	// Item 0: P=1/2, R=1/2. Item 2: P=2/2, R=2/4. Averages: P=3/4, R=1/2.
	if math.Abs(pr.Precision-0.75) > 1e-12 || math.Abs(pr.Recall-0.5) > 1e-12 {
		t.Fatalf("partial overlap: P=%v R=%v, want P=0.75 R=0.5", pr.Precision, pr.Recall)
	}
	if math.Abs(pr.F1()-0.6) > 1e-12 {
		t.Fatalf("F1 %v, want 0.6", pr.F1())
	}
}

// TestEvaluateSingletonUniverse runs the full metric stack on the smallest
// possible problem: one item, one worker, one label.
func TestEvaluateSingletonUniverse(t *testing.T) {
	ds := mustDataset(t, 1, 1, 1)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	pred := []labelset.Set{labelset.Of(0)}
	pr, err := Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision != 1 || pr.Recall != 1 || pr.F1() != 1 || pr.Items != 1 {
		t.Fatalf("singleton universe: %+v", pr)
	}
	if em, err := ExactMatchRate(ds, pred); err != nil || em != 1 {
		t.Fatalf("exact match %v err %v", em, err)
	}
	if mj, err := MeanJaccard(ds, pred); err != nil || mj != 1 {
		t.Fatalf("jaccard %v err %v", mj, err)
	}
	wq := OverallWorkerQuality(ds)
	if len(wq) != 1 {
		t.Fatalf("%d worker quality entries, want 1", len(wq))
	}
	// tp=1, fn=0, fp=0, tn=0 with add-one smoothing: sens 2/3, spec 1/2.
	if math.Abs(wq[0].Sensitivity-2.0/3) > 1e-12 || math.Abs(wq[0].Specificity-0.5) > 1e-12 {
		t.Fatalf("singleton worker quality %+v", wq[0])
	}
}

// TestMetricsLengthMismatch pins the error contract shared by the three
// dataset-level metrics when the prediction slice has the wrong length.
func TestMetricsLengthMismatch(t *testing.T) {
	ds := mustDataset(t, 2, 1, 2)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	short := []labelset.Set{labelset.Of(0)}
	if _, err := Evaluate(ds, short); err == nil {
		t.Error("Evaluate accepted a short prediction slice")
	}
	if _, err := ExactMatchRate(ds, short); err == nil {
		t.Error("ExactMatchRate accepted a short prediction slice")
	}
	if _, err := MeanJaccard(ds, short); err == nil {
		t.Error("MeanJaccard accepted a short prediction slice")
	}
}

// TestWorkerQualityLabelRange pins the nil return for out-of-range labels.
func TestWorkerQualityLabelRange(t *testing.T) {
	ds := mustDataset(t, 1, 1, 2)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if got := WorkerQuality(ds, -1); got != nil {
		t.Errorf("label -1: got %v, want nil", got)
	}
	if got := WorkerQuality(ds, 2); got != nil {
		t.Errorf("label 2 of 2: got %v, want nil", got)
	}
	if got := WorkerQuality(ds, 1); len(got) != 1 {
		t.Errorf("valid unvoted label: got %d entries, want 1", len(got))
	}
}

// TestSummarizeEdges covers the degenerate Summarize inputs.
func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty input: %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.Std != 0 {
		t.Fatalf("single value: %+v", s)
	}
	if s := Summarize([]float64{-2, 2}); s.Mean != 0 || s.Std != 2 {
		t.Fatalf("symmetric pair: %+v", s)
	}
}
