// Package metrics implements the evaluation measures of the paper's §5.1:
// set-based precision and recall averaged over items, plus the per-label
// sensitivity/specificity used by the community-detection analysis (Fig. 9
// and Appendix A's worker-type characterisation).
package metrics

import (
	"fmt"
	"math"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// PR holds the averaged set-based precision and recall of a prediction.
type PR struct {
	Precision float64
	Recall    float64
	// Items is the number of ground-truth items the averages cover.
	Items int
}

// F1 returns the harmonic mean of precision and recall.
func (p PR) F1() float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

func (p PR) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f (n=%d)", p.Precision, p.Recall, p.Items)
}

// ItemPR returns the per-item precision and recall of predicted against
// truth, following the paper's conventions:
//
//	P_i = |Y_i ∩ Y*_i| / |Y*_i|    (1 when the prediction is empty and the
//	                                truth is empty; 0 when the prediction is
//	                                empty but truth is not — nothing correct
//	                                was asserted)
//	R_i = |Y_i ∩ Y*_i| / |Y_i|     (1 when the truth is empty)
func ItemPR(truth, predicted labelset.Set) (precision, recall float64) {
	inter := float64(truth.IntersectLen(predicted))
	if n := predicted.Len(); n > 0 {
		precision = inter / float64(n)
	} else if truth.IsEmpty() {
		precision = 1
	}
	if n := truth.Len(); n > 0 {
		recall = inter / float64(n)
	} else {
		recall = 1
	}
	return precision, recall
}

// Evaluate averages per-item precision/recall over every item of the dataset
// that has evaluation truth. predicted must have length ds.NumItems.
func Evaluate(ds *answers.Dataset, predicted []labelset.Set) (PR, error) {
	if len(predicted) != ds.NumItems {
		return PR{}, fmt.Errorf("metrics: %d predictions for %d items", len(predicted), ds.NumItems)
	}
	var sumP, sumR float64
	n := 0
	for i := 0; i < ds.NumItems; i++ {
		truth, ok := ds.Truth(i)
		if !ok {
			continue
		}
		p, r := ItemPR(truth, predicted[i])
		sumP += p
		sumR += r
		n++
	}
	if n == 0 {
		return PR{}, fmt.Errorf("metrics: dataset %q has no ground truth", ds.Name)
	}
	return PR{Precision: sumP / float64(n), Recall: sumR / float64(n), Items: n}, nil
}

// ExactMatchRate returns the fraction of ground-truth items whose predicted
// set equals the truth exactly (the strictest multi-label accuracy notion).
func ExactMatchRate(ds *answers.Dataset, predicted []labelset.Set) (float64, error) {
	if len(predicted) != ds.NumItems {
		return 0, fmt.Errorf("metrics: %d predictions for %d items", len(predicted), ds.NumItems)
	}
	match, n := 0, 0
	for i := 0; i < ds.NumItems; i++ {
		truth, ok := ds.Truth(i)
		if !ok {
			continue
		}
		if truth.Equal(predicted[i]) {
			match++
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: dataset %q has no ground truth", ds.Name)
	}
	return float64(match) / float64(n), nil
}

// MeanJaccard returns the average Jaccard similarity between predictions and
// truth over ground-truth items.
func MeanJaccard(ds *answers.Dataset, predicted []labelset.Set) (float64, error) {
	if len(predicted) != ds.NumItems {
		return 0, fmt.Errorf("metrics: %d predictions for %d items", len(predicted), ds.NumItems)
	}
	sum, n := 0.0, 0
	for i := 0; i < ds.NumItems; i++ {
		truth, ok := ds.Truth(i)
		if !ok {
			continue
		}
		sum += truth.Jaccard(predicted[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: dataset %q has no ground truth", ds.Name)
	}
	return sum / float64(n), nil
}

// WorkerLabelQuality is one worker's two-coin quality for one label:
// sensitivity (true-positive rate) and specificity (true-negative rate),
// the axes of the paper's Fig. 9 and Fig. 10.
type WorkerLabelQuality struct {
	Worker      int
	Label       int
	Sensitivity float64
	Specificity float64
	// Positives / Negatives are the support sizes behind each rate.
	Positives int
	Negatives int
}

// WorkerQuality computes, for the given label, every worker's sensitivity
// and specificity against the dataset's ground truth, skipping workers with
// no answered truth items. Laplace smoothing (add-one) keeps rates away from
// the degenerate 0/0.
func WorkerQuality(ds *answers.Dataset, label int) []WorkerLabelQuality {
	if label < 0 || label >= ds.NumLabels {
		return nil
	}
	var out []WorkerLabelQuality
	for u := 0; u < ds.NumWorkers; u++ {
		tp, fn, tn, fp := 0, 0, 0, 0
		ds.ForWorker(u, func(a answers.Answer) {
			truth, ok := ds.Truth(a.Item)
			if !ok {
				return
			}
			inTruth := truth.Contains(label)
			inAnswer := a.Labels.Contains(label)
			switch {
			case inTruth && inAnswer:
				tp++
			case inTruth && !inAnswer:
				fn++
			case !inTruth && inAnswer:
				fp++
			default:
				tn++
			}
		})
		if tp+fn+tn+fp == 0 {
			continue
		}
		out = append(out, WorkerLabelQuality{
			Worker:      u,
			Label:       label,
			Sensitivity: float64(tp+1) / float64(tp+fn+2),
			Specificity: float64(tn+1) / float64(tn+fp+2),
			Positives:   tp + fn,
			Negatives:   tn + fp,
		})
	}
	return out
}

// OverallWorkerQuality computes a single sensitivity/specificity pair per
// worker pooled over all labels — the 2-D points of Appendix A's Fig. 10.
func OverallWorkerQuality(ds *answers.Dataset) []WorkerLabelQuality {
	var out []WorkerLabelQuality
	for u := 0; u < ds.NumWorkers; u++ {
		tp, fn, tn, fp := 0, 0, 0, 0
		ds.ForWorker(u, func(a answers.Answer) {
			truth, ok := ds.Truth(a.Item)
			if !ok {
				return
			}
			for c := 0; c < ds.NumLabels; c++ {
				inTruth := truth.Contains(c)
				inAnswer := a.Labels.Contains(c)
				switch {
				case inTruth && inAnswer:
					tp++
				case inTruth && !inAnswer:
					fn++
				case !inTruth && inAnswer:
					fp++
				default:
					tn++
				}
			}
		})
		if tp+fn+tn+fp == 0 {
			continue
		}
		out = append(out, WorkerLabelQuality{
			Worker:      u,
			Label:       -1,
			Sensitivity: float64(tp+1) / float64(tp+fn+2),
			Specificity: float64(tn+1) / float64(tn+fp+2),
			Positives:   tp + fn,
			Negatives:   tn + fp,
		})
	}
	return out
}

// MeanStd summarises repeated measurements (Table 5's "± deviation").
type MeanStd struct {
	Mean float64
	Std  float64
	N    int
}

// Summarize computes mean and population standard deviation.
func Summarize(values []float64) MeanStd {
	n := len(values)
	if n == 0 {
		return MeanStd{}
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	ss := 0.0
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return MeanStd{Mean: mean, Std: math.Sqrt(ss / float64(n)), N: n}
}

func (m MeanStd) String() string {
	return fmt.Sprintf("%.3f ±%.3f", m.Mean, m.Std)
}
