package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

func TestItemPR(t *testing.T) {
	cases := []struct {
		truth, pred labelset.Set
		p, r        float64
	}{
		{labelset.Of(1, 2), labelset.Of(1, 2), 1, 1},
		{labelset.Of(1, 2), labelset.Of(1), 1, 0.5},
		{labelset.Of(1), labelset.Of(1, 2), 0.5, 1},
		{labelset.Of(1, 2), labelset.Of(3), 0, 0},
		{labelset.Of(1, 2), labelset.Set{}, 0, 0},
		{labelset.Set{}, labelset.Set{}, 1, 1},
		{labelset.Set{}, labelset.Of(1), 0, 1},
	}
	for _, c := range cases {
		p, r := ItemPR(c.truth, c.pred)
		if p != c.p || r != c.r {
			t.Errorf("ItemPR(%v,%v) = (%g,%g), want (%g,%g)", c.truth, c.pred, p, r, c.p, c.r)
		}
	}
}

func TestItemPRBoundsProperty(t *testing.T) {
	f := func(tr, pr []uint8) bool {
		truth, pred := labelset.Set{}, labelset.Set{}
		for _, c := range tr {
			truth.Add(int(c % 32))
		}
		for _, c := range pr {
			pred.Add(int(c % 32))
		}
		p, r := ItemPR(truth, pred)
		if p < 0 || p > 1 || r < 0 || r > 1 {
			return false
		}
		// Perfect prediction is (1,1).
		if truth.Equal(pred) {
			return p == 1 && r == 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func buildDataset(t *testing.T) *answers.Dataset {
	t.Helper()
	d, err := answers.NewDataset("m", 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(0, 0, labelset.Of(0, 1)))
	must(d.Add(1, 0, labelset.Of(2)))
	must(d.Add(1, 1, labelset.Of(2, 3)))
	must(d.SetTruth(0, labelset.Of(0, 1)))
	must(d.SetTruth(1, labelset.Of(2)))
	// Item 2 has no truth: excluded from averages.
	return d
}

func TestEvaluate(t *testing.T) {
	d := buildDataset(t)
	pred := []labelset.Set{
		labelset.Of(0),    // P=1, R=0.5
		labelset.Of(2, 3), // P=0.5, R=1
		labelset.Of(4),    // no truth: ignored
	}
	pr, err := Evaluate(d, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Items != 2 {
		t.Errorf("Items = %d", pr.Items)
	}
	if math.Abs(pr.Precision-0.75) > 1e-12 || math.Abs(pr.Recall-0.75) > 1e-12 {
		t.Errorf("PR = %v", pr)
	}
	if math.Abs(pr.F1()-0.75) > 1e-12 {
		t.Errorf("F1 = %g", pr.F1())
	}
	if _, err := Evaluate(d, pred[:1]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestEvaluateNoTruth(t *testing.T) {
	d, _ := answers.NewDataset("empty", 2, 2, 2)
	if _, err := Evaluate(d, make([]labelset.Set, 2)); err == nil {
		t.Error("no-truth dataset should fail evaluation")
	}
}

func TestExactMatchAndJaccard(t *testing.T) {
	d := buildDataset(t)
	pred := []labelset.Set{labelset.Of(0, 1), labelset.Of(2, 3), labelset.Set{}}
	em, err := ExactMatchRate(d, pred)
	if err != nil {
		t.Fatal(err)
	}
	if em != 0.5 {
		t.Errorf("ExactMatchRate = %g", em)
	}
	mj, err := MeanJaccard(d, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mj-0.75) > 1e-12 {
		t.Errorf("MeanJaccard = %g", mj)
	}
	if _, err := ExactMatchRate(d, pred[:1]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MeanJaccard(d, pred[:1]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWorkerQuality(t *testing.T) {
	d, err := answers.NewDataset("wq", 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Worker 0 always asserts label 0 correctly; worker 1 always wrongly.
	must(d.SetTruth(0, labelset.Of(0)))
	must(d.SetTruth(1, labelset.Of(0)))
	must(d.SetTruth(2, labelset.Of(1)))
	must(d.SetTruth(3, labelset.Of(1)))
	must(d.Add(0, 0, labelset.Of(0)))
	must(d.Add(1, 0, labelset.Of(0)))
	must(d.Add(2, 0, labelset.Of(1)))
	must(d.Add(3, 0, labelset.Of(1)))
	must(d.Add(0, 1, labelset.Of(1)))
	must(d.Add(1, 1, labelset.Of(1)))
	must(d.Add(2, 1, labelset.Of(0)))
	must(d.Add(3, 1, labelset.Of(0)))

	q := WorkerQuality(d, 0)
	if len(q) != 2 {
		t.Fatalf("quality count = %d", len(q))
	}
	// Worker 0 for label 0: tp=2 fn=0 tn=2 fp=0 -> smoothed 3/4, 3/4.
	if q[0].Sensitivity != 0.75 || q[0].Specificity != 0.75 {
		t.Errorf("worker0: %+v", q[0])
	}
	// Worker 1 for label 0: tp=0 fn=2 tn=0 fp=2 -> smoothed 1/4, 1/4.
	if q[1].Sensitivity != 0.25 || q[1].Specificity != 0.25 {
		t.Errorf("worker1: %+v", q[1])
	}
	if WorkerQuality(d, -1) != nil || WorkerQuality(d, 99) != nil {
		t.Error("out-of-range labels should return nil")
	}

	overall := OverallWorkerQuality(d)
	if len(overall) != 2 {
		t.Fatalf("overall count = %d", len(overall))
	}
	if overall[0].Sensitivity <= overall[1].Sensitivity {
		t.Error("good worker should dominate bad worker in sensitivity")
	}
}

func TestWorkerQualitySkipsWorkersWithoutTruth(t *testing.T) {
	d, _ := answers.NewDataset("wq2", 2, 2, 2)
	if err := d.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	// No truth anywhere: nobody has measurable quality.
	if got := WorkerQuality(d, 0); len(got) != 0 {
		t.Errorf("expected no measurable workers, got %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.Std != 2 || s.N != 8 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.Mean != 0 || z.Std != 0 || z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
	if got := s.String(); got != "5.000 ±2.000" {
		t.Errorf("String = %q", got)
	}
}
