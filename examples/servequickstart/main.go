// Serving quickstart: stream a simulated crowd into a cpaserve instance
// over HTTP and watch the served consensus sharpen as answers arrive — the
// online-serving counterpart of examples/onlinestream.
//
// By default the example starts an ephemeral in-process server so it is
// fully self-contained:
//
//	go run ./examples/servequickstart
//
// Point it at a separately running daemon (cmd/cpaserve) to exercise a real
// deployment, e.g. for the CI crash-recovery smoke test:
//
//	cpaserve -addr :8080 -data ./cpaserve-data &
//	go run ./examples/servequickstart -addr http://localhost:8080 -job demo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"cpa"
	"cpa/internal/answers"
	"cpa/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "", "base URL of a running cpaserve (empty = start an in-process ephemeral server)")
		jobID   = flag.String("job", "quickstart", "job id to create and stream into")
		profile = flag.String("profile", "topic", "Table 3 profile to simulate")
		scale   = flag.Float64("scale", 0.15, "profile scale in (0,1]")
		seed    = flag.Int64("seed", 7, "simulation and model seed")
		chunk   = flag.Int("chunk", 150, "answers per HTTP ingestion request")
		steps   = flag.Int("steps", 8, "number of consensus polls across the stream")
	)
	flag.Parse()

	base, _, err := cpa.LoadProfile(*profile, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(*seed)))

	baseURL := *addr
	if baseURL == "" {
		baseURL = startEphemeralServer()
		fmt.Printf("started in-process ephemeral cpaserve at %s\n", baseURL)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Create the job. The model config rides along in the create request,
	// so the server fits with the same SVI settings the offline run would.
	createBody, _ := json.Marshal(serve.CreateJobRequest{
		ID: *jobID, Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: cpa.Options{Seed: *seed, BatchSize: 128},
	})
	resp, err := client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(createBody))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("creating job %q: status %d (already exists? pick another -job)", *jobID, resp.StatusCode)
	}

	all := ds.Answers()
	fmt.Printf("streaming %d answers of %q (scale %.2f) in chunks of %d\n\n",
		len(all), *profile, *scale, *chunk)
	fmt.Println("arrival  round  precision  recall  F1     drift(items)")

	prev := map[int]string{}
	nextPoll := 1
	sent := 0
	for start := 0; start < len(all); start += *chunk {
		end := start + *chunk
		if end > len(all) {
			end = len(all)
		}
		postChunk(client, baseURL+"/v1/jobs/"+*jobID+"/answers", all[start:end])
		sent = end
		for nextPoll <= *steps && sent >= nextPoll*len(all)/(*steps) {
			snap := waitForSnapshot(client, baseURL+"/v1/jobs/"+*jobID+"/consensus", sent)
			pred := make([]cpa.LabelSet, ds.NumItems)
			drift := 0
			for _, item := range snap.Consensus {
				pred[item.Item] = cpa.Labels(item.Labels...)
				key := fmt.Sprint(item.Labels)
				if prev[item.Item] != key {
					drift++
					prev[item.Item] = key
				}
			}
			pr, err := cpa.Evaluate(ds, pred)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d%%     %5d  %.3f      %.3f   %.3f  %d\n",
				100*sent/len(all), snap.Round, pr.Precision, pr.Recall, pr.F1(), drift)
			nextPoll++
		}
	}

	var stats serve.ServerStats
	getJSON(client, baseURL+"/statsz", &stats)
	for _, js := range stats.Jobs {
		if js.ID == *jobID {
			fmt.Printf("\n/statsz: %d ingested, %d fitted over %d rounds, queue depth %d, snapshot age %.2fs\n",
				js.IngestedAnswers, js.FittedAnswers, js.FitRounds, js.QueueDepth, js.SnapshotAgeSec)
		}
	}
	fmt.Println("(drift counts items whose served label set changed since the previous poll;\n" +
		"it shrinks toward 0 as the consensus stabilises — always-fresh reads, no refit-and-reload)")
}

// startEphemeralServer runs a journal-less serve.Registry on a loopback
// port, the programmatic equivalent of `cpaserve -addr :0` with an empty
// -data (no journal, no recovery).
func startEphemeralServer() string {
	reg, err := serve.Open(serve.Config{BatchWait: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, serve.NewServer(reg)); err != nil {
			log.Print(err)
		}
	}()
	return "http://" + ln.Addr().String()
}

// postChunk ingests one slice of the stream as NDJSON.
func postChunk(client *http.Client, url string, chunk []cpa.Answer) {
	var body bytes.Buffer
	for _, a := range chunk {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			log.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := client.Post(url, "application/x-ndjson", &body)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("ingesting %d answers: status %d", len(chunk), resp.StatusCode)
	}
}

// waitForSnapshot polls /consensus until the published snapshot covers all
// answers sent so far (ingestion is asynchronous; the fitter publishes a
// fresh snapshot after each mini-batch).
func waitForSnapshot(client *http.Client, url string, answers int) *serve.Snapshot {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap serve.Snapshot
		getJSON(client, url, &snap)
		if snap.Answers >= answers {
			return &snap
		}
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for a snapshot covering %d answers (have %d)", answers, snap.Answers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(client *http.Client, url string, v any) {
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: decoding: %v", url, err)
	}
}
