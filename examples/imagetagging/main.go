// Image tagging: the paper's headline workload (NUS-WIDE-style multi-label
// image annotation) end to end — simulate a crowd with spammers and label
// co-occurrence structure, aggregate with every method in the evaluation,
// and inspect the worker communities CPA discovered.
//
// Run with: go run ./examples/imagetagging
package main

import (
	"fmt"
	"log"
	"time"

	"cpa"
)

func main() {
	// A quarter-scale NUS-WIDE profile: ~500 images, ~100 workers, 81 tags,
	// eleven answers per image, strongly correlated labels, skewed worker
	// participation, 25% spammers.
	ds, meta, err := cpa.LoadProfile("image", 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.ComputeStats()
	fmt.Printf("simulated image dataset: %d images, %d workers, %d tags, %d answers (%.1f per image)\n\n",
		st.Items, st.Workers, st.Labels, st.Answers, st.MeanAnswersPerItem)

	methods := []cpa.Aggregator{
		cpa.NewMajorityVote(),
		cpa.NewDawidSkene(),
		cpa.NewBCC(),
		cpa.NewCBCC(),
		cpa.New(cpa.Options{Seed: 1}),
	}
	fmt.Println("method      precision  recall  F1      time")
	var cpaAgg = methods[len(methods)-1]
	for _, m := range methods {
		start := time.Now()
		pred, err := m.Aggregate(ds)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := cpa.Evaluate(ds, pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %.3f      %.3f   %.3f   %.2fs\n",
			m.Name(), pr.Precision, pr.Recall, pr.F1(), time.Since(start).Seconds())
	}

	// Peek inside the fitted CPA model: how well do its reliability weights
	// separate the simulator's ground-truth worker archetypes?
	model := cpaAgg.(interface{ Model() *cpa.Model }).Model()
	fmt.Println("\nCPA worker-reliability by true archetype (model never saw these):")
	sums := map[string][]float64{}
	for u := 0; u < ds.NumWorkers; u++ {
		wt := meta.WorkerTypes[u].String()
		sums[wt] = append(sums[wt], model.WorkerReliability(u))
	}
	for _, wt := range []string{"reliable", "normal", "sloppy", "uniform-spammer", "random-spammer"} {
		vals := sums[wt]
		if len(vals) == 0 {
			continue
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		fmt.Printf("  %-16s %3d workers, mean reliability %.3f\n", wt, len(vals), mean)
	}
	fmt.Printf("\neffective communities: %d (truncation %d), effective clusters: %d\n",
		model.EffectiveCommunities(0.02), 10, model.EffectiveClusters(0.02))
}
