// Spammer audit: use CPA's worker-community reliabilities to flag faulty
// workers after a spam attack — the mechanism behind the paper's Fig. 4
// robustness result, turned into an operational audit tool.
//
// A movie-genre dataset is spiked so that 40% of all answers come from
// injected spammers; the fitted model's per-worker reliabilities are then
// thresholded and scored against the known injection.
//
// Run with: go run ./examples/spammeraudit
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"cpa"
	"cpa/internal/simulate"
)

func main() {
	base, _, err := cpa.LoadProfile("movie", 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	spamRatio := 0.4
	spiked, err := simulate.InjectSpammers(base, spamRatio, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d items, %d workers (%d injected spammers), %d answers (%.0f%% spam)\n\n",
		spiked.NumItems, spiked.NumWorkers, spiked.NumWorkers-base.NumWorkers,
		spiked.NumAnswers(), spamRatio*100)

	agg := cpa.New(cpa.Options{Seed: 2})
	pred, err := agg.Aggregate(spiked)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := cpa.Evaluate(spiked, pred)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := cpa.New(cpa.Options{Seed: 2}).Aggregate(base)
	if err != nil {
		log.Fatal(err)
	}
	cleanPR, err := cpa.Evaluate(base, clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consensus quality:  clean data F1=%.3f   spiked data F1=%.3f (robustness ratio %.2f)\n\n",
		cleanPR.F1(), pr.F1(), pr.F1()/cleanPR.F1())

	// Audit: rank workers by model reliability; flag the bottom tail.
	model := agg.Model()
	type scored struct {
		worker int
		rel    float64
	}
	ranked := make([]scored, spiked.NumWorkers)
	for u := 0; u < spiked.NumWorkers; u++ {
		ranked[u] = scored{u, model.WorkerReliability(u)}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].rel < ranked[b].rel })

	isInjected := func(u int) bool { return u >= base.NumWorkers }
	injected := spiked.NumWorkers - base.NumWorkers
	flagged := ranked[:injected] // flag as many as were injected
	hits := 0
	for _, s := range flagged {
		if isInjected(s.worker) {
			hits++
		}
	}
	fmt.Printf("audit: flagged the %d least-reliable workers\n", len(flagged))
	fmt.Printf("  injected spammers caught: %d/%d (flag-set precision vs injected only: %.2f)\n",
		hits, injected, float64(hits)/float64(len(flagged)))
	fmt.Println("  (the base crowd itself contains ~25% organic spammers, so many un-injected flags are real spam too)")
	fmt.Println("\nleast reliable ten workers (reliability, injected?):")
	for _, s := range ranked[:10] {
		fmt.Printf("  worker %4d  rel=%.3f  injected=%v\n", s.worker, s.rel, isInjected(s.worker))
	}
}
