// Quickstart: the paper's Table 1 motivating example through the public API.
//
// Five workers tag four pictures with subsets of {sky, plane, sun, water,
// tree}. Worker u3 is a uniform spammer (answers {water} to everything),
// worker u4 a random spammer. Per-label majority voting gets picture i1
// partially wrong and picture i4 badly incomplete; CPA improves the
// consensus by weighting worker communities and exploiting label
// co-occurrence. (Four items are too few for a full recovery — the effect
// at scale is shown by examples/imagetagging.)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cpa"
)

func main() {
	names := []string{"sky", "plane", "sun", "water", "tree"}
	ds, err := cpa.NewDataset("table1", 4, 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	ds.LabelNames = names

	// The answer matrix of Table 1 (labels 0-based: sky=0 ... tree=4).
	answers := []struct {
		item, worker int
		labels       cpa.LabelSet
	}{
		{0, 0, cpa.Labels(3, 4)}, {0, 1, cpa.Labels(3, 4)}, {0, 2, cpa.Labels(3)}, {0, 3, cpa.Labels(0)}, {0, 4, cpa.Labels(4)},
		{1, 0, cpa.Labels(1, 2)}, {1, 1, cpa.Labels(0, 3)}, {1, 2, cpa.Labels(3)}, {1, 3, cpa.Labels(1)}, {1, 4, cpa.Labels(2, 3)},
		{2, 0, cpa.Labels(0, 1)}, {2, 1, cpa.Labels(3)}, {2, 2, cpa.Labels(3)}, {2, 3, cpa.Labels(2)}, {2, 4, cpa.Labels(3, 4)},
		{3, 0, cpa.Labels(0, 1)}, {3, 1, cpa.Labels(1, 2)}, {3, 2, cpa.Labels(3)}, {3, 3, cpa.Labels(3)}, {3, 4, cpa.Labels(0, 1, 2)},
	}
	for _, a := range answers {
		if err := ds.Add(a.item, a.worker, a.labels); err != nil {
			log.Fatal(err)
		}
	}
	truth := []cpa.LabelSet{cpa.Labels(4), cpa.Labels(2, 3), cpa.Labels(3, 4), cpa.Labels(0, 1, 2)}
	for i, tr := range truth {
		if err := ds.SetTruth(i, tr); err != nil {
			log.Fatal(err)
		}
	}

	mv, err := cpa.NewMajorityVote().Aggregate(ds)
	if err != nil {
		log.Fatal(err)
	}
	consensus, err := cpa.New(cpa.Options{Seed: 3, MaxCommunities: 3, MaxClusters: 4}).Aggregate(ds)
	if err != nil {
		log.Fatal(err)
	}

	pretty := func(s cpa.LabelSet) string {
		out := "{"
		for i, c := range s.Slice() {
			if i > 0 {
				out += ","
			}
			out += names[c]
		}
		return out + "}"
	}
	fmt.Println("item  correct              majority             CPA")
	for i := 0; i < ds.NumItems; i++ {
		tr, _ := ds.Truth(i)
		fmt.Printf("i%d    %-20s %-20s %s\n", i+1, pretty(tr), pretty(mv[i]), pretty(consensus[i]))
	}
	mvPR, err := cpa.Evaluate(ds, mv)
	if err != nil {
		log.Fatal(err)
	}
	cpaPR, err := cpa.Evaluate(ds, consensus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmajority voting: %v\nCPA:             %v\n", mvPR, cpaPR)
}
