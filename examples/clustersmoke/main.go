// Cluster smoke driver: streams a deterministic simulated crowd into a
// cpaserve target — a cparouter fronting a sharded cluster, or a single
// cpaserve — in lockstep chunks, quiescing after every chunk.
//
// The lockstep discipline (chunk size == mini-batch size, full quiesce
// between chunks) makes the fitter's batch boundaries a pure function of
// the stream, so two runs over different topologies produce bit-identical
// consensus. That is what lets the CI cluster-smoke job kill a shard
// primary mid-stream, let the router promote a journal-shipping follower,
// finish the stream, and then diff the cluster's consensus against an
// uninterrupted single-node run — byte for byte (modulo created_at).
//
// The -from/-to chunk window splits one logical stream across invocations
// so the kill happens between two driver runs:
//
//	go run ./examples/clustersmoke -addr http://localhost:8080 -job smoke -create -to 5
//	# ... kill -9 the shard primary ...
//	go run ./examples/clustersmoke -addr http://localhost:8080 -job smoke -from 5
//
// Ingestion retries 429 backpressure and the router's 502
// failed-over-please-retry answer (the router never retries writes itself;
// the client owns the retry).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"time"

	"cpa"
	"cpa/internal/answers"
	"cpa/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "base URL of the cparouter or cpaserve to stream into")
		jobID   = flag.String("job", "smoke", "job id")
		create  = flag.Bool("create", false, "create the job before streaming")
		profile = flag.String("profile", "image", "Table 3 profile to simulate")
		scale   = flag.Float64("scale", 0.08, "profile scale in (0,1]")
		seed    = flag.Int64("seed", 5, "simulation and model seed")
		chunk   = flag.Int("chunk", 64, "answers per chunk == mini-batch size (lockstep)")
		from    = flag.Int("from", 0, "first chunk index to send")
		to      = flag.Int("to", -1, "stop before this chunk index (-1 = stream to the end)")
	)
	flag.Parse()

	base, _, err := cpa.LoadProfile(*profile, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(*seed)))
	all := ds.Answers()
	nChunks := (len(all) + *chunk - 1) / *chunk
	end := nChunks
	if *to >= 0 && *to < nChunks {
		end = *to
	}
	client := &http.Client{Timeout: 60 * time.Second}

	if *create {
		body, _ := json.Marshal(serve.CreateJobRequest{
			ID: *jobID, Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
			Model: cpa.Options{Seed: *seed, BatchSize: *chunk},
		})
		resp, err := client.Post(*addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			log.Fatalf("creating job %q: status %d", *jobID, resp.StatusCode)
		}
		fmt.Printf("created job %s (%d items, %d workers, %d labels; %d chunks of %d)\n",
			*jobID, ds.NumItems, ds.NumWorkers, ds.NumLabels, nChunks, *chunk)
	}

	for c := *from; c < end; c++ {
		lo, hi := c**chunk, min((c+1)**chunk, len(all))
		sendChunk(client, *addr, *jobID, all[lo:hi])
		quiesce(client, *addr, *jobID, int64(hi))
		fmt.Printf("chunk %d/%d: %d answers acked, fitted and published\n", c+1, nChunks, hi)
	}
	fmt.Printf("done: chunks [%d,%d) of %d streamed into %s\n", *from, end, nChunks, *addr)
}

// sendChunk posts one NDJSON request, retrying backpressure (429) and
// failover (502 / connection errors) until the target acks.
func sendChunk(client *http.Client, base, jobID string, chunk []answers.Answer) {
	var body bytes.Buffer
	for _, a := range chunk {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			log.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	payload := body.Bytes()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Post(base+"/v1/jobs/"+jobID+"/answers", "application/x-ndjson", bytes.NewReader(payload))
		status := 0
		if err == nil {
			status = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		switch status {
		case http.StatusAccepted:
			return
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusGatewayTimeout, 0:
			if time.Now().After(deadline) {
				log.Fatalf("ingestion never recovered (last status %d, err %v)", status, err)
			}
			time.Sleep(20 * time.Millisecond)
		default:
			log.Fatalf("ingesting chunk: status %d", status)
		}
	}
}

// quiesce polls the job stats until everything sent so far is fitted and
// the published snapshot has caught the fit round exactly.
func quiesce(client *http.Client, base, jobID string, sent int64) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st serve.JobStats
		resp, err := client.Get(base + "/v1/jobs/" + jobID)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(&st)
			} else {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if err == nil && st.Error == "" && st.IngestedAnswers == sent &&
			st.FittedAnswers == sent && st.SnapshotRound == int(st.FitRounds) {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s never quiesced at %d answers (stats %+v, err %v)", jobID, sent, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
