// Online streaming: incremental consensus with stochastic variational
// inference (paper §4.1). Answers arrive in batches; after each slice of the
// stream the current model snapshot predicts all items, showing how the
// consensus sharpens as data accumulates — the paper's Fig. 6 workload.
//
// Run with: go run ./examples/onlinestream
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cpa"
)

func main() {
	base, _, err := cpa.LoadProfile("topic", 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Shuffle the arrival order, as a live crowdsourcing platform would see.
	ds := base.Shuffled(rand.New(rand.NewSource(7)))

	opts := cpa.Options{Seed: 7, BatchSize: 128}
	model, err := cpa.NewModel(opts, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		log.Fatal(err)
	}

	n := ds.NumAnswers()
	fmt.Printf("streaming %d answers in batches of %d\n\n", n, opts.BatchSize)
	fmt.Println("arrival  precision  recall  F1")
	consumed, step := 0, 0
	for _, batch := range ds.Batches(opts.BatchSize) {
		if err := model.PartialFit(batch.Answers); err != nil {
			log.Fatal(err)
		}
		consumed += len(batch.Answers)
		for step < 5 && consumed >= (step+1)*n/5 {
			step++
			snapshot := model.Clone()
			snapshot.FinalizeOnline()
			pred, err := snapshot.Predict()
			if err != nil {
				log.Fatal(err)
			}
			pr, err := cpa.Evaluate(ds, pred)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d%%     %.3f      %.3f   %.3f\n", step*20, pr.Precision, pr.Recall, pr.F1())
		}
	}

	// Compare the single-pass online result against batch VI on the same data.
	offlinePred, err := cpa.New(cpa.Options{Seed: 7}).Aggregate(ds)
	if err != nil {
		log.Fatal(err)
	}
	offPR, err := cpa.Evaluate(ds, offlinePred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline batch VI on the same data: P=%.3f R=%.3f F1=%.3f\n",
		offPR.Precision, offPR.Recall, offPR.F1())
	fmt.Println("(the paper's Table 5: online stays within a few points of offline at a fraction of the cost)")
}
