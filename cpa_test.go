package cpa

import (
	"bytes"
	"testing"
)

// TestPublicAPIRoundTrip exercises the documented quick-start path end to
// end through the facade: build a dataset, aggregate with CPA and every
// baseline, serialise and reload.
func TestPublicAPIRoundTrip(t *testing.T) {
	ds, meta, err := Simulate(SimulateConfig{
		Name:           "facade",
		Items:          120,
		Workers:        40,
		Labels:         25,
		AnswersPerItem: 7,
		Mix:            DefaultWorkerMix(),
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.TypeCount(0) == 0 { // Reliable
		t.Error("simulated crowd lacks reliable workers")
	}

	for _, agg := range []Aggregator{
		New(Options{Seed: 1}),
		NewOnline(Options{Seed: 1}),
		NewMajorityVote(),
		NewDawidSkene(),
		NewBCC(),
		NewCBCC(),
	} {
		pred, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		pr, err := Evaluate(ds, pred)
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		if pr.F1() < 0.3 {
			t.Errorf("%s degenerate on easy facade data: %v", agg.Name(), pr)
		}
	}

	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAnswers() != ds.NumAnswers() {
		t.Error("JSON round trip lost answers")
	}
}

func TestFacadeManualDataset(t *testing.T) {
	ds, err := NewDataset("manual", 3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		truth := Labels(i, (i+1)%4)
		if err := ds.SetTruth(i, truth); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 3; u++ {
			if err := ds.Add(i, u, truth.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	model, err := NewModel(Options{Seed: 1}, 3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Fit(ds); err != nil {
		t.Fatal(err)
	}
	pred, err := model.Predict()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision < 0.99 || pr.Recall < 0.99 {
		t.Errorf("perfect workers should give perfect consensus: %v", pr)
	}
}

func TestProfileNames(t *testing.T) {
	names := ProfileNames()
	if len(names) != 5 {
		t.Fatalf("ProfileNames = %v", names)
	}
	ds, _, err := LoadProfile(names[0], 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAnswers() == 0 {
		t.Error("profile dataset empty")
	}
}
