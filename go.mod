module cpa

go 1.24
