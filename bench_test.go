// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment, backed by internal/experiments), plus
// ablation benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration performs the complete experiment at Quick scale;
// the cpabench CLI runs the same experiments at standard/paper scale.
package cpa

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/experiments"
	"cpa/internal/metrics"
	"cpa/internal/simulate"
)

func newBenchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func benchSettings() experiments.Settings {
	return experiments.Settings{DataScale: 0.08, Runs: 1, Seed: 1}
}

func runExperiment(b *testing.B, runner experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := runner(benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Motivating(b *testing.B) { runExperiment(b, experiments.RunTable1Motivating) }

func BenchmarkTable3DatasetStats(b *testing.B) { runExperiment(b, experiments.RunTable3DatasetStats) }

func BenchmarkTable4OverallAccuracy(b *testing.B) {
	runExperiment(b, experiments.RunTable4OverallAccuracy)
}

func BenchmarkFig3Sparsity(b *testing.B) { runExperiment(b, experiments.RunFig3Sparsity) }

func BenchmarkFig4Spammers(b *testing.B) { runExperiment(b, experiments.RunFig4Spammers) }

func BenchmarkFig5LabelDependency(b *testing.B) {
	runExperiment(b, experiments.RunFig5LabelDependency)
}

func BenchmarkFig6DataArrival(b *testing.B) { runExperiment(b, experiments.RunFig6DataArrival) }

func BenchmarkTable5OnlineAccuracy(b *testing.B) {
	runExperiment(b, experiments.RunTable5OnlineAccuracy)
}

func BenchmarkFig7Runtime(b *testing.B) { runExperiment(b, experiments.RunFig7Runtime) }

func BenchmarkFig8Ablation(b *testing.B) { runExperiment(b, experiments.RunFig8Ablation) }

func BenchmarkFig9Communities(b *testing.B) { runExperiment(b, experiments.RunFig9Communities) }

func BenchmarkFig10WorkerTypes(b *testing.B) { runExperiment(b, experiments.RunFig10WorkerTypes) }

// ---------------------------------------------------------------------------
// Component benchmarks: the individual inference engines on a fixed workload
// ---------------------------------------------------------------------------

func benchDataset(b *testing.B, name string) *Dataset {
	b.Helper()
	ds, _, err := datasets.Load(name, 0.08, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchAggregate(b *testing.B, agg Aggregator, ds *Dataset) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Aggregate(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPABatchVI(b *testing.B) {
	benchAggregate(b, New(Options{Seed: 1}), benchDataset(b, "image"))
}

// BenchmarkFit measures one full batch Fit (no prediction) at the image
// profile, full scale — the parameter-engine hot path. Allocations per
// iteration are the headline number for the flat-buffer refactor.
func BenchmarkFit(b *testing.B) {
	ds, _, err := datasets.Load("image", 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := core.NewModel(core.Config{Seed: 1}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitStream is the SVI counterpart of BenchmarkFit: one single-pass
// streaming fit over the full-scale image profile.
func BenchmarkFitStream(b *testing.B) {
	ds, _, err := datasets.Load("image", 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := core.NewModel(core.Config{Seed: 1}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.FitStream(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// publishBenchSetup streams `mul` copies of the image stream into a model
// through the serving-shaped loop — PartialFit a mini-batch, publish a
// snapshot — leaving a warm publisher at the target stream length.
func publishBenchSetup(b *testing.B, mul int) (*core.Model, *core.Publisher, [][]answers.Answer) {
	b.Helper()
	ds, _, err := datasets.Load("image", 0.5, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Seed: 1, BatchSize: 256}
	model, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		b.Fatal(err)
	}
	all := ds.Answers()
	var batches [][]answers.Answer
	for start := 0; start < len(all); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(all) {
			end = len(all)
		}
		batches = append(batches, all[start:end])
	}
	pub := core.NewPublisher(model)
	for rep := 0; rep < mul; rep++ {
		for _, batch := range batches {
			if err := model.PartialFit(batch); err != nil {
				b.Fatal(err)
			}
			if _, _, err := pub.Publish(false); err != nil {
				b.Fatal(err)
			}
		}
	}
	return model, pub, batches
}

// BenchmarkPublish measures the serving layer's per-round snapshot cost
// under backlog (incremental publication) at 1× and 10× stream length. The
// headline metric is publish-ns/op — the publish call alone, excluding the
// PartialFit that feeds it; flat across the sub-benchmarks is the tentpole
// claim (per-round publish cost independent of stream length). Each timed
// iteration ingests one more batch, so the model is re-derived (outside the
// timer) every 8·mul iterations to keep the measured stream length within
// ~20% of its nominal point at any -benchtime.
func BenchmarkPublish(b *testing.B) {
	for _, mul := range []int{1, 10} {
		b.Run(fmt.Sprintf("stream=%dx", mul), func(b *testing.B) {
			refreshEvery := 8 * mul
			model, pub, batches := publishBenchSetup(b, mul)
			b.ReportAllocs()
			b.ResetTimer()
			var pubNs int64
			for i := 0; i < b.N; i++ {
				if i > 0 && i%refreshEvery == 0 {
					b.StopTimer()
					model, pub, batches = publishBenchSetup(b, mul)
					b.StartTimer()
				}
				if err := model.PartialFit(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				if _, _, err := pub.Publish(false); err != nil {
					b.Fatal(err)
				}
				pubNs += time.Since(start).Nanoseconds()
			}
			b.ReportMetric(float64(pubNs)/float64(b.N), "publish-ns/op")
		})
	}
}

// BenchmarkPublishFull is the caught-up (and pre-refactor) publication
// path: the complete FinalizeOnline pipeline per round on the reusable
// clone. O(stream) per round by construction — the comparison point that
// shows what the incremental mode saves.
func BenchmarkPublishFull(b *testing.B) {
	for _, mul := range []int{1, 10} {
		b.Run(fmt.Sprintf("stream=%dx", mul), func(b *testing.B) {
			_, pub, _ := publishBenchSetup(b, mul)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pub.Publish(true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublishLegacy is the seed-era publish: a fresh deep
// Clone + FinalizeOnline + ConsensusView every round, no reusable engine —
// kept as the before/after baseline for the snapshot-engine refactor.
func BenchmarkPublishLegacy(b *testing.B) {
	for _, mul := range []int{1, 10} {
		b.Run(fmt.Sprintf("stream=%dx", mul), func(b *testing.B) {
			model, _, _ := publishBenchSetup(b, mul)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clone := model.Clone()
				clone.FinalizeOnline()
				if _, err := clone.ConsensusView(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCPAOnlineSVI(b *testing.B) {
	benchAggregate(b, NewOnline(Options{Seed: 1}), benchDataset(b, "image"))
}

func BenchmarkCPAParallel(b *testing.B) {
	ds := benchDataset(b, "image")
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			benchAggregate(b, New(Options{Seed: 1, Parallelism: p}), ds)
		})
	}
}

func BenchmarkBaselineMV(b *testing.B) {
	benchAggregate(b, NewMajorityVote(), benchDataset(b, "image"))
}

func BenchmarkBaselineEM(b *testing.B) {
	benchAggregate(b, NewDawidSkene(), benchDataset(b, "image"))
}

func BenchmarkBaselineCBCC(b *testing.B) {
	benchAggregate(b, NewCBCC(), benchDataset(b, "image"))
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices documented in DESIGN.md §5.
// Each reports the achieved F1 as a custom metric alongside the runtime.
// ---------------------------------------------------------------------------

func reportF1(b *testing.B, agg Aggregator, ds *Dataset) {
	b.Helper()
	var pr PR
	for i := 0; i < b.N; i++ {
		pred, err := agg.Aggregate(ds)
		if err != nil {
			b.Fatal(err)
		}
		got, err := Evaluate(ds, pred)
		if err != nil {
			b.Fatal(err)
		}
		pr = got
	}
	b.ReportMetric(pr.F1(), "F1")
}

// BenchmarkAblationGrounding compares the imputed-truth grounding (D2)
// against the literal Eq. 7 (ground truth only, which is vacuous without
// test questions).
func BenchmarkAblationGrounding(b *testing.B) {
	ds := benchDataset(b, "image")
	b.Run("imputed", func(b *testing.B) { reportF1(b, New(Options{Seed: 1}), ds) })
	b.Run("literal-eq7", func(b *testing.B) { reportF1(b, New(Options{Seed: 1, GroundTruthOnly: true}), ds) })
}

// BenchmarkAblationPhiEvidence compares the answer-evidence term in the
// cluster update (D1, matching Appendix C) against the literal Eq. 3.
func BenchmarkAblationPhiEvidence(b *testing.B) {
	ds := benchDataset(b, "image")
	b.Run("appendix-c", func(b *testing.B) { reportF1(b, New(Options{Seed: 1}), ds) })
	b.Run("literal-eq3", func(b *testing.B) { reportF1(b, New(Options{Seed: 1, LiteralPhiUpdate: true}), ds) })
}

// BenchmarkAblationTruncation sweeps the stick-breaking truncations (the
// paper: "can safely be set to large values").
func BenchmarkAblationTruncation(b *testing.B) {
	ds := benchDataset(b, "image")
	for _, mt := range []struct{ m, t int }{{3, 5}, {10, 20}, {25, 50}} {
		b.Run(fmt.Sprintf("M=%d,T=%d", mt.m, mt.t), func(b *testing.B) {
			reportF1(b, New(Options{Seed: 1, MaxCommunities: mt.m, MaxClusters: mt.t}), ds)
		})
	}
}

// BenchmarkAblationForgettingRate sweeps the SVI forgetting rate r (the
// paper finds r ∈ [0.85, 0.9] best).
func BenchmarkAblationForgettingRate(b *testing.B) {
	ds := benchDataset(b, "image")
	for _, r := range []float64{0.6, 0.75, 0.875, 1.0} {
		b.Run(fmt.Sprintf("r=%.3f", r), func(b *testing.B) {
			reportF1(b, NewOnline(Options{Seed: 1, ForgettingRate: r}), ds)
		})
	}
}

// BenchmarkAblationPrediction compares greedy search (§3.4) with the capped
// exhaustive subset scan on the small-vocabulary movie dataset.
func BenchmarkAblationPrediction(b *testing.B) {
	ds := benchDataset(b, "movie")
	b.Run("greedy", func(b *testing.B) { reportF1(b, New(Options{Seed: 1}), ds) })
	b.Run("exhaustive", func(b *testing.B) {
		reportF1(b, New(Options{Seed: 1, ExhaustivePrediction: true}), ds)
	})
}

// BenchmarkAblationSparsity re-runs the Fig. 8 model ablation under heavy
// sparsity, where the paper's claimed advantages of communities (R1) and
// clusters (R3) are most visible.
func BenchmarkAblationSparsity(b *testing.B) {
	base := benchDataset(b, "image")
	ds := simulate.Sparsify(base, 0.6, newBenchRand(3))
	b.Run("CPA", func(b *testing.B) { reportF1(b, New(Options{Seed: 1}), ds) })
	b.Run("NoZ", func(b *testing.B) { reportF1(b, core.NewNoZAggregator(core.Config{Seed: 1}), ds) })
	b.Run("NoL", func(b *testing.B) { reportF1(b, core.NewNoLAggregator(core.Config{Seed: 1}), ds) })
	b.Run("cBCC", func(b *testing.B) { reportF1(b, baselines.NewCBCC(), ds) })
}

// BenchmarkMetricsEvaluate measures the evaluation substrate itself.
func BenchmarkMetricsEvaluate(b *testing.B) {
	ds := benchDataset(b, "image")
	pred, err := New(Options{Seed: 1}).Aggregate(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Evaluate(ds, pred); err != nil {
			b.Fatal(err)
		}
	}
}
