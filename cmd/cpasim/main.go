// Command cpasim generates synthetic partial-agreement crowdsourcing
// datasets — either one of the paper's five Table 3 profiles or a fully
// custom configuration — and writes them as JSON or CSV.
//
// Usage:
//
//	cpasim -profile image -scale 0.25 -seed 7 -format json > image.json
//	cpasim -items 500 -workers 100 -labels 30 -answers 8 -spam 0.3 > custom.json
package main

import (
	"flag"
	"fmt"
	"os"

	"cpa/internal/datasets"
	"cpa/internal/simulate"
)

func main() {
	var (
		profile = flag.String("profile", "", "Table 3 profile: "+fmt.Sprint(datasets.Names())+" (empty = custom)")
		scale   = flag.Float64("scale", 0.25, "profile scale in (0,1]")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "json", "output format: json, csv or jsonl (answer stream for cpaserve ingestion)")

		items       = flag.Int("items", 200, "custom: number of items")
		workers     = flag.Int("workers", 50, "custom: number of workers")
		labels      = flag.Int("labels", 30, "custom: vocabulary size")
		perItem     = flag.Int("answers", 8, "custom: answers per item")
		clusters    = flag.Int("clusters", 0, "custom: label clusters (0 = auto)")
		correlation = flag.Float64("correlation", 0.8, "custom: label correlation in [0,1]")
		truthMean   = flag.Float64("truth", 3, "custom: mean true-label-set size")
		candidates  = flag.Int("candidates", 0, "custom: candidate-list size (0 = auto)")
		skew        = flag.Float64("skew", 0, "custom: worker participation skew")
		spam        = flag.Float64("spam", 0.25, "custom: spammer share of the worker population")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "cpasim: %v\n", err)
		os.Exit(1)
	}

	var cfg simulate.Config
	if *profile != "" {
		p, err := datasets.Get(*profile)
		if err != nil {
			fatal(err)
		}
		cfg, err = p.Config(*scale, *seed)
		if err != nil {
			fatal(err)
		}
	} else {
		honest := 1 - *spam
		cfg = simulate.Config{
			Name:           "custom",
			Items:          *items,
			Workers:        *workers,
			Labels:         *labels,
			AnswersPerItem: *perItem,
			LabelClusters:  *clusters,
			Correlation:    *correlation,
			TruthMean:      *truthMean,
			Candidates:     *candidates,
			WorkerSkew:     *skew,
			Mix: simulate.Mix{
				Reliable:       honest * 0.42,
				Normal:         honest * 0.32,
				Sloppy:         honest * 0.26,
				UniformSpammer: *spam / 2,
				RandomSpammer:  *spam / 2,
			},
			Seed: *seed,
		}
	}

	ds, meta, err := simulate.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "json":
		if err := ds.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	case "csv":
		if err := ds.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	case "jsonl":
		// Pure answer stream, one JSON object per line — pipeable straight
		// into cpaserve's NDJSON ingestion endpoint.
		if err := ds.WriteJSONL(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	st := ds.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %s: %d items, %d workers, %d labels, %d answers "+
		"(%.1f/item, density %.3f); workers: %d reliable, %d normal, %d sloppy, %d uniform-spam, %d random-spam\n",
		ds.Name, st.Items, st.Workers, st.Labels, st.Answers, st.MeanAnswersPerItem, st.Density,
		meta.TypeCount(simulate.Reliable), meta.TypeCount(simulate.Normal), meta.TypeCount(simulate.Sloppy),
		meta.TypeCount(simulate.UniformSpammer), meta.TypeCount(simulate.RandomSpammer))
}
