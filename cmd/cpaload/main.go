// Command cpaload drives cpaserve with the scenario-diverse load & chaos
// harness (internal/loadgen; DESIGN.md §7): named crowd/traffic scenarios
// streamed closed-loop over HTTP while behavioural invariants are checked —
// served-equals-replay, acked-answer durability under 429 backpressure,
// bit-for-bit chaos recovery, snapshot monotonicity and bounded staleness.
//
// Usage:
//
//	cpaload -list
//	cpaload -scenario spammer-flood
//	cpaload -scenario all -scale 0.06 -seed 3 -json cpaload.json
//	cpaload -scenario bursty -addr http://localhost:8080 -realtime
//	cpaload -scenario capacity-sweep -json capacity.json
//
// The capacity-sweep pseudo-scenario (not part of 'all') runs the USL
// capacity sweep instead of a closed-loop scenario: it measures throughput
// ladders over Parallelism, mini-batch size and offered concurrency, fits
// X(n) = γn/(1+α(n−1)+βn(n−1)) per dimension, and A/B-tests serve's
// AutoTune against the best hand-swept rung (see DESIGN.md §13).
//
// By default each scenario runs against an in-process server with a
// virtual clock (the arrival schedule shapes the request sequence at zero
// wall cost). -addr targets a running cpaserve instead (chaos scenarios and
// journal-replay invariants then report as skipped/unsupported); -realtime
// paces arrivals in wall-clock time at each scenario's rate. The exit
// status is 1 when any invariant fails, so the command doubles as a soak
// gate in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cpa/internal/loadgen"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name, comma-separated list, or 'all' (see -list)")
		list     = flag.Bool("list", false, "list the scenario library and exit")
		scale    = flag.Float64("scale", 0.06, "dataset profile scale in (0,1]")
		seed     = flag.Int64("seed", 1, "workload seed (crowd, arrival order, kill points)")
		addr     = flag.String("addr", "", "base URL of a running cpaserve (empty = in-process server)")
		data     = flag.String("data", "", "in-process server data directory (empty = temp dir, removed after)")
		rate     = flag.Bool("realtime", false, "pace arrivals in real time at each scenario's rate (default: virtual clock)")
		jsonOut  = flag.String("json", "", "write the machine-readable report here (array of per-scenario reports)")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		for _, sc := range loadgen.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Description)
		}
		fmt.Printf("%-16s primary hard-killed mid-stream; the router promotes the most-caught-up follower losslessly\n", loadgen.ClusterFailoverScenario)
		fmt.Printf("%-16s planned zero-downtime ownership transfer under live ingestion\n", loadgen.ClusterHandoffScenario)
		fmt.Printf("%-16s USL capacity sweep: scalability ladders, per-dimension fits, auto-tune A/B (not part of 'all')\n", loadgen.CapacitySweepScenario)
		return
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "cpaload: -scenario is required (or -list)")
		os.Exit(2)
	}
	names := strings.Split(*scenario, ",")
	if *scenario == "all" {
		names = append(loadgen.ScenarioNames(), loadgen.ClusterScenarioNames()...)
	}
	isCluster := map[string]bool{}
	for _, name := range loadgen.ClusterScenarioNames() {
		isCluster[name] = true
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cpaload: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	// Non-nil so -json writes a valid (possibly empty) array even when
	// every scenario errors out before producing a report. Cluster reports
	// share the array (the schema carries its own scenario name).
	reports := []any{}
	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == loadgen.CapacitySweepScenario {
			// The capacity sweep drives the serving core in-process at a
			// ladder of settings; -addr does not apply.
			if *addr != "" {
				fmt.Fprintf(os.Stderr, "cpaload: %s: capacity sweeps require the in-process target, ignoring -addr\n", name)
			}
			rep, err := loadgen.RunCapacity(loadgen.CapacityConfig{
				Scale: *scale, Seed: *seed, DataDir: *data, Logf: logf,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cpaload: %s: %v\n", name, err)
				failed = true
				continue
			}
			reports = append(reports, rep)
			fmt.Println(rep.Summary())
			if len(rep.Failed()) > 0 {
				failed = true
			}
			continue
		}
		if isCluster[name] {
			// Cluster scenarios build their own in-process cluster; -addr
			// does not apply (there is no external router to chaos-test).
			if *addr != "" {
				fmt.Fprintf(os.Stderr, "cpaload: %s: cluster scenarios require the in-process target, ignoring -addr\n", name)
			}
			ccfg := loadgen.ClusterConfig{Scenario: name, Scale: *scale, Seed: *seed, Logf: logf}
			if *rate {
				ccfg.Clock = loadgen.RealClock{}
			}
			rep, err := loadgen.RunCluster(ccfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cpaload: %s: %v\n", name, err)
				failed = true
				continue
			}
			reports = append(reports, rep)
			fmt.Println(rep.Summary())
			if len(rep.Failed()) > 0 {
				failed = true
			}
			continue
		}
		cfg := loadgen.Config{
			Scenario: name,
			Scale:    *scale,
			Seed:     *seed,
			BaseURL:  *addr,
			DataDir:  *data,
			Logf:     logf,
		}
		if *rate {
			cfg.Clock = loadgen.RealClock{}
		}
		rep, err := loadgen.Run(cfg)
		if err != nil {
			// A harness error fails the run but must not discard the
			// reports already gathered: keep going so -json still lands.
			fmt.Fprintf(os.Stderr, "cpaload: %s: %v\n", name, err)
			failed = true
			continue
		}
		reports = append(reports, rep)
		fmt.Println(rep.Summary())
		if len(rep.Failed()) > 0 {
			failed = true
		}
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpaload: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cpaload: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d scenario reports)\n", *jsonOut, len(reports))
	}
	if failed {
		os.Exit(1)
	}
}
