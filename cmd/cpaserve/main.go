// Command cpaserve runs the CPA consensus-serving daemon: a multi-tenant
// HTTP service that ingests crowd answer streams and serves always-fresh
// consensus snapshots while fitting continues in the background
// (internal/serve; DESIGN.md §6).
//
// Usage:
//
//	cpaserve -addr :8080 -data ./cpaserve-data
//
// Quick walkthrough (see README.md for a complete session):
//
//	curl -X POST localhost:8080/v1/jobs -d '{"id":"tags","items":100,"workers":20,"labels":30}'
//	curl -X POST localhost:8080/v1/jobs/tags/answers -d '{"answers":[{"i":0,"u":1,"x":[2,5]}]}'
//	curl localhost:8080/v1/jobs/tags/consensus
//
// On restart with the same -data directory every job is recovered from its
// checkpoint and journal; consensus survives crashes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpa/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		data      = flag.String("data", "cpaserve-data", "data directory for journals and checkpoints ('' = ephemeral, no recovery)")
		queue     = flag.Int("queue", 0, "per-job ingestion queue limit (0 = default 65536)")
		saveEvery = flag.Int("save-every", 0, "checkpoint the model every N fit rounds (0 = default 16)")
		batchWait = flag.Duration("batch-wait", 0, "max wait for a mini-batch to fill before fitting a partial one (0 = default 100ms)")
		syncJrnl  = flag.Bool("sync-journal", false, "fsync the journal after every ingested batch")
		truncate  = flag.Bool("truncate-journal", false, "drop the journal prefix behind each durable checkpoint (bounded disk for long-lived jobs)")
		truncMin  = flag.Int64("truncate-min", 0, "minimum droppable prefix in bytes before a truncation fires (0 = default 64KiB)")
		autoTune  = flag.Bool("auto-tune", false, "steer each job's Parallelism and mini-batch size toward the measured USL knee (DESIGN.md §13)")
		tuneWin   = flag.Int("auto-tune-window", 0, "fit rounds per auto-tune measurement window (0 = default 8)")
		tuneMaxP  = flag.Int("auto-tune-max-par", 0, "auto-tune Parallelism ladder cap (0 = default GOMAXPROCS)")
	)
	flag.Parse()

	reg, err := serve.Open(serve.Config{
		Dir:                    *data,
		QueueLimit:             *queue,
		SaveEvery:              *saveEvery,
		BatchWait:              *batchWait,
		SyncJournal:            *syncJrnl,
		TruncateJournal:        *truncate,
		TruncateMin:            *truncMin,
		AutoTune:               *autoTune,
		AutoTuneWindow:         *tuneWin,
		AutoTuneMaxParallelism: *tuneMaxP,
	})
	if err != nil {
		log.Fatalf("cpaserve: %v", err)
	}
	if n := len(reg.Jobs()); n > 0 {
		log.Printf("cpaserve: recovered %d job(s) from %s", n, *data)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(reg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("cpaserve: serving on %s (data: %s)", *addr, dataDesc(*data))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("cpaserve: %s, shutting down", sig)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cpaserve: serve error: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("cpaserve: HTTP shutdown: %v", err)
	}
	// Drain queues, checkpoint every model, close journals.
	if err := reg.Close(); err != nil {
		log.Fatalf("cpaserve: closing registry: %v", err)
	}
	log.Printf("cpaserve: clean shutdown")
}

func dataDesc(dir string) string {
	if dir == "" {
		return "ephemeral"
	}
	return fmt.Sprintf("%q", dir)
}
