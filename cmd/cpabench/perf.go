package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/experiments"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

// benchMethods lists the aggregation methods the -json perf sweep covers, in
// report order. The pseudo-method "publish" measures the serving layer's
// per-round snapshot publication at 1× and 10× stream length instead of a
// full aggregation (see benchPublish).
var benchMethods = []string{"cpa", "cpa-online", "mv", "em", "bcc", "cbcc", "publish"}

// BenchRecord is one (method, profile) perf measurement — the BENCH_*.json
// row shape tracked across PRs.
type BenchRecord struct {
	Method      string  `json:"method"`
	Profile     string  `json:"profile"`
	Scale       float64 `json:"scale"`
	Runs        int     `json:"runs"`
	Items       int     `json:"items"`
	Workers     int     `json:"workers"`
	Labels      int     `json:"labels"`
	Answers     int     `json:"answers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Precision   float64 `json:"precision"`
	Recall      float64 `json:"recall"`
	F1          float64 `json:"f1"`
}

// BenchReport is the envelope written by cpabench -json.
type BenchReport struct {
	GeneratedAt string        `json:"generated_at"`
	ScaleName   string        `json:"scale_name"`
	Seed        int64         `json:"seed"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Parallelism int           `json:"parallelism"`
	Results     []BenchRecord `json:"results"`
}

// runPerfBench measures every requested method on every requested Table 3
// profile (wall time, allocations, and consensus P/R against the simulated
// ground truth) and writes the report as JSON. Each op is one full
// aggregation of the dataset — the same unit as BenchmarkFit/FitStream — so
// ns_per_op is directly comparable across PRs on the same machine.
func runPerfBench(path, scaleName string, s experiments.Settings, profileList, methodList string) error {
	parallelism := runtime.GOMAXPROCS(0)
	report := BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ScaleName:   scaleName,
		Seed:        s.Seed,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  parallelism,
		Parallelism: parallelism,
	}

	profiles := datasets.Names()
	if profileList != "" {
		profiles = strings.Split(profileList, ",")
	}
	methods := benchMethods
	if methodList != "" {
		methods = strings.Split(methodList, ",")
	}

	for _, profile := range profiles {
		ds, _, err := datasets.Load(strings.TrimSpace(profile), s.DataScale, s.Seed)
		if err != nil {
			return fmt.Errorf("loading profile %q: %w", profile, err)
		}
		for _, method := range methods {
			method = strings.TrimSpace(method)
			if method == "publish" {
				recs, err := benchPublish(ds, s, parallelism)
				if err != nil {
					return fmt.Errorf("publish on %s: %w", profile, err)
				}
				for _, rec := range recs {
					rec.Profile = ds.Name
					rec.Scale = s.DataScale
					report.Results = append(report.Results, rec)
					fmt.Printf("%-16s %-8s %9.3f ms/round (mean of %d rounds at %d answers)\n",
						rec.Method, ds.Name, float64(rec.NsPerOp)/1e6, rec.Runs, rec.Answers)
				}
				continue
			}
			rec, err := benchOne(method, ds, s, parallelism)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", method, profile, err)
			}
			rec.Profile = ds.Name
			rec.Scale = s.DataScale
			report.Results = append(report.Results, rec)
			fmt.Printf("%-10s %-8s %9.1f ms/op %10d allocs/op  P=%.3f R=%.3f\n",
				method, ds.Name, float64(rec.NsPerOp)/1e6, rec.AllocsPerOp, rec.Precision, rec.Recall)
		}
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
	return nil
}

// benchOne times s.Runs full aggregations of ds with the given method and
// evaluates the (deterministic) consensus of the last run.
func benchOne(method string, ds *answers.Dataset, s experiments.Settings, parallelism int) (BenchRecord, error) {
	agg, err := benchAggregator(method, s.Seed, parallelism)
	if err != nil {
		return BenchRecord{}, err
	}
	var totalNs, totalAllocs, totalBytes int64
	var ms runtime.MemStats
	var pred []labelset.Set
	for run := 0; run < s.Runs; run++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startAllocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		pred, err = agg.Aggregate(ds)
		if err != nil {
			return BenchRecord{}, err
		}
		totalNs += time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms)
		totalAllocs += int64(ms.Mallocs - startAllocs)
		totalBytes += int64(ms.TotalAlloc - startBytes)
	}

	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		return BenchRecord{}, err
	}
	return BenchRecord{
		Method:      method,
		Runs:        s.Runs,
		Items:       ds.NumItems,
		Workers:     ds.NumWorkers,
		Labels:      ds.NumLabels,
		Answers:     ds.NumAnswers(),
		NsPerOp:     totalNs / int64(s.Runs),
		AllocsPerOp: totalAllocs / int64(s.Runs),
		BytesPerOp:  totalBytes / int64(s.Runs),
		Precision:   pr.Precision,
		Recall:      pr.Recall,
		F1:          pr.F1(),
	}, nil
}

// benchPublish measures the serving layer's per-round snapshot publication
// in the fitter's shape — PartialFit a mini-batch, publish — at 1× and 10×
// the profile's stream length. ns_per_op is the mean of the publish call
// alone over the final rounds at the target length; a flat trajectory
// across the two points is the O(batch) publication property the snapshot
// engine guarantees (DESIGN.md §8). The publish-full rows measure the
// caught-up full finalize pipeline at the same lengths for comparison
// (O(stream) by construction).
func benchPublish(ds *answers.Dataset, s experiments.Settings, parallelism int) ([]BenchRecord, error) {
	const steadyRounds = 16
	var out []BenchRecord
	for _, mul := range []int{1, 10} {
		model, err := core.NewModel(core.Config{Seed: s.Seed, Parallelism: parallelism},
			ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			return nil, err
		}
		batchSize := model.Config().BatchSize
		pub := core.NewPublisher(model)
		all := ds.Answers()
		total := len(all) * mul
		// Measure only the trailing rounds at the target length, and never
		// round 1: the cold publisher publishes the full pipeline there, so
		// folding it into a short stream's mean would make the 1× point
		// incomparable with the 10× one.
		roundsPerRep := (len(all) + batchSize - 1) / batchSize
		totalRounds := roundsPerRep * mul
		window := steadyRounds
		if window > totalRounds-1 {
			window = totalRounds - 1
		}
		if window < 1 {
			return nil, fmt.Errorf("stream too short for publish bench (%d answers, %d rounds)", total, totalRounds)
		}
		var tailNs int64
		tailRounds, round := 0, 0
		for rep := 0; rep < mul; rep++ {
			for start := 0; start < len(all); start += batchSize {
				end := start + batchSize
				if end > len(all) {
					end = len(all)
				}
				if err := model.PartialFit(all[start:end]); err != nil {
					return nil, err
				}
				begin := time.Now()
				if _, _, err := pub.Publish(false); err != nil {
					return nil, err
				}
				d := time.Since(begin).Nanoseconds()
				round++
				if round > totalRounds-window {
					tailNs += d
					tailRounds++
				}
			}
		}
		dims := BenchRecord{
			Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels, Answers: total,
		}
		inc := dims
		inc.Method = fmt.Sprintf("publish-%dx", mul)
		inc.Runs = tailRounds
		inc.NsPerOp = tailNs / int64(tailRounds)
		out = append(out, inc)

		const fullRuns = 3
		var fullNs int64
		for k := 0; k < fullRuns; k++ {
			begin := time.Now()
			if _, _, err := pub.Publish(true); err != nil {
				return nil, err
			}
			fullNs += time.Since(begin).Nanoseconds()
		}
		full := dims
		full.Method = fmt.Sprintf("publish-full-%dx", mul)
		full.Runs = fullRuns
		full.NsPerOp = fullNs / fullRuns
		out = append(out, full)
	}
	return out, nil
}

// benchAggregator mirrors cpacli's method table for the perf sweep.
func benchAggregator(name string, seed int64, parallelism int) (baselines.Aggregator, error) {
	cfg := core.Config{Seed: seed, Parallelism: parallelism}
	switch name {
	case "cpa":
		return core.NewAggregator(cfg), nil
	case "cpa-online":
		return core.NewOnlineAggregator(cfg), nil
	case "noz":
		return core.NewNoZAggregator(cfg), nil
	case "nol":
		return core.NewNoLAggregator(cfg), nil
	case "mv":
		return baselines.NewMajorityVote(), nil
	case "em":
		return baselines.NewDawidSkene(), nil
	case "bcc":
		return baselines.NewBCC(), nil
	case "cbcc":
		return baselines.NewCBCC(), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
