package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/cpufeat"
	"cpa/internal/datasets"
	"cpa/internal/experiments"
	"cpa/internal/labelset"
	"cpa/internal/mathx"
	"cpa/internal/metrics"
	"cpa/internal/serve"
)

// benchMethods lists the aggregation methods the -json perf sweep covers, in
// report order. The pseudo-method "publish" measures the serving layer's
// per-round snapshot publication at 1× and 10× stream length instead of a
// full aggregation (see benchPublish); "kernels" times the inference hot
// loops in isolation — batch fit, single-pass stream, best steady-state
// per-round PartialFit latency, and the finalize pass — without the prediction stage
// (see benchKernels). "microkernels" times the dispatched mathx vector
// kernels themselves, per backend and per length, independent of any
// dataset (see benchMicroKernels); it runs once per report, not per
// profile. "ingest" times the ingestion hot path — the zero-alloc NDJSON
// codec against its encoding/json reference, and serial vs concurrent
// group-committed journal appends — also once per report (see benchIngest).
var benchMethods = []string{"cpa", "cpa-online", "mv", "em", "bcc", "cbcc", "publish", "kernels", "microkernels", "ingest"}

// BenchRecord is one (method, profile) perf measurement — the BENCH_*.json
// row shape tracked across PRs.
type BenchRecord struct {
	Method      string  `json:"method"`
	Profile     string  `json:"profile"`
	Scale       float64 `json:"scale"`
	Runs        int     `json:"runs"`
	Items       int     `json:"items"`
	Workers     int     `json:"workers"`
	Labels      int     `json:"labels"`
	Answers     int     `json:"answers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Precision   float64 `json:"precision"`
	Recall      float64 `json:"recall"`
	F1          float64 `json:"f1"`
}

// BenchReport is the envelope written by cpabench -json. CPU records the
// detected vector features and the kernel backend the run dispatched to
// (e.g. "avx,avx2,fma backend=avx2"), so bench artifacts from different
// machines are never silently compared as like-for-like.
type BenchReport struct {
	GeneratedAt string        `json:"generated_at"`
	ScaleName   string        `json:"scale_name"`
	Seed        int64         `json:"seed"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Parallelism int           `json:"parallelism"`
	CPU         string        `json:"cpu"`
	Results     []BenchRecord `json:"results"`
}

// gatedMethods are the method families the -baseline regression gate
// compares: the CPA fit/stream aggregations, the isolated kernel rows, and
// the publish costs — both the per-round incremental rows (usually under
// the gate floor: sub-millisecond is the snapshot engine's design point)
// and the full finalize pipeline, whose O(stream) runtime is the gateable
// proxy for the same kernels. Baselines (mv, em, …) are informational.
var gatedMethods = map[string]bool{
	"cpa": true, "cpa-online": true,
	"kernels-fit": true, "kernels-stream": true, "kernels-round": true, "kernels-finalize": true,
	"publish-1x": true, "publish-10x": true, "publish-full-1x": true, "publish-full-10x": true,
}

// checkBaseline compares the fresh report against a committed baseline and
// returns an error listing every gated (method, profile) row whose ns/op
// regressed by more than maxRegress (e.g. 0.15 = +15%). Rows absent from
// the baseline are reported as informational and never fail the gate, so
// adding a method or profile doesn't require a flag day.
func checkBaseline(report *BenchReport, baselinePath string, maxRegress float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	// ns/op is only comparable between runs on the same machine shape and
	// workload: refuse to gate against a baseline recorded under a
	// different GOMAXPROCS or scale (e.g. the committed reference file on
	// foreign hardware) rather than fail PRs on an apples-to-oranges diff.
	// CI sidesteps this by regenerating the baseline from the base commit
	// on the same runner within the job.
	if base.GOMAXPROCS != report.GOMAXPROCS || base.ScaleName != report.ScaleName {
		fmt.Printf("gate: baseline environment mismatch (gomaxprocs %d vs %d, scale %q vs %q): skipping regression gate\n",
			base.GOMAXPROCS, report.GOMAXPROCS, base.ScaleName, report.ScaleName)
		return nil
	}
	old := make(map[string]int64, len(base.Results))
	for _, r := range base.Results {
		old[r.Method+"/"+r.Profile] = r.NsPerOp
	}
	// Rows shorter than this cannot be gated at a 15%-class threshold:
	// timer granularity, cache state, and a single scheduler stall inside a
	// handful of sub-millisecond samples swamp real regressions. Such rows
	// stay informational; run a larger -scale to gate them.
	const gateFloorNs = 2_000_000
	var regressions []string
	for _, r := range report.Results {
		if !gatedMethods[r.Method] {
			continue
		}
		key := r.Method + "/" + r.Profile
		was, ok := old[key]
		if !ok || was <= 0 {
			fmt.Printf("gate: %-26s no baseline row, skipping\n", key)
			continue
		}
		if was < gateFloorNs || r.NsPerOp < gateFloorNs {
			fmt.Printf("gate: %-26s %8.2fms under the %.0fms gate floor, informational only\n",
				key, float64(r.NsPerOp)/1e6, float64(gateFloorNs)/1e6)
			continue
		}
		ratio := float64(r.NsPerOp) / float64(was)
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1fms -> %.1fms (%+.1f%%)", key, float64(was)/1e6, float64(r.NsPerOp)/1e6, (ratio-1)*100))
		}
		fmt.Printf("gate: %-26s %8.1fms vs %8.1fms baseline (%+6.1f%%) %s\n",
			key, float64(r.NsPerOp)/1e6, float64(was)/1e6, (ratio-1)*100, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regression above %.0f%% on %d row(s):\n  %s",
			maxRegress*100, len(regressions), strings.Join(regressions, "\n  "))
	}
	return nil
}

// runPerfBench measures every requested method on every requested Table 3
// profile (wall time, allocations, and consensus P/R against the simulated
// ground truth) and writes the report as JSON. Each op is one full
// aggregation of the dataset — the same unit as BenchmarkFit/FitStream — so
// ns_per_op is directly comparable across PRs on the same machine. When
// baselinePath is non-empty the report is then diffed against it
// (checkBaseline) and the run fails on regression.
func runPerfBench(path, scaleName string, s experiments.Settings, profileList, methodList, baselinePath string, maxRegress float64) error {
	parallelism := runtime.GOMAXPROCS(0)
	report := BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ScaleName:   scaleName,
		Seed:        s.Seed,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  parallelism,
		Parallelism: parallelism,
		CPU:         fmt.Sprintf("%s backend=%s", cpufeat.Summary(), mathx.ActiveBackend()),
	}

	profiles := datasets.Names()
	if profileList != "" {
		profiles = strings.Split(profileList, ",")
	}
	methods := benchMethods
	if methodList != "" {
		methods = strings.Split(methodList, ",")
	}

	// The microkernel and ingest rows are dataset-independent: run them once
	// up front and drop the pseudo-methods from the per-profile sweep.
	perProfile := methods[:0:0]
	for _, method := range methods {
		switch strings.TrimSpace(method) {
		case "microkernels":
			for _, rec := range benchMicroKernels() {
				report.Results = append(report.Results, rec)
				fmt.Printf("%-22s %-14s %10.1f ns/op\n", rec.Method, rec.Profile, float64(rec.NsPerOp))
			}
		case "ingest":
			recs, err := benchIngest()
			if err != nil {
				return fmt.Errorf("ingest bench: %w", err)
			}
			for _, rec := range recs {
				report.Results = append(report.Results, rec)
				fmt.Printf("%-22s %-14s %10.1f ns/op\n", rec.Method, rec.Profile, float64(rec.NsPerOp))
			}
		default:
			perProfile = append(perProfile, method)
		}
	}
	methods = perProfile

	for _, profile := range profiles {
		ds, _, err := datasets.Load(strings.TrimSpace(profile), s.DataScale, s.Seed)
		if err != nil {
			return fmt.Errorf("loading profile %q: %w", profile, err)
		}
		for _, method := range methods {
			method = strings.TrimSpace(method)
			if method == "publish" || method == "kernels" {
				var recs []BenchRecord
				var err error
				if method == "publish" {
					recs, err = benchPublish(ds, s, parallelism)
				} else {
					recs, err = benchKernels(ds, s, parallelism)
				}
				if err != nil {
					return fmt.Errorf("%s on %s: %w", method, profile, err)
				}
				for _, rec := range recs {
					rec.Profile = ds.Name
					rec.Scale = s.DataScale
					report.Results = append(report.Results, rec)
					fmt.Printf("%-16s %-8s %9.3f ms/op (runs %d at %d answers)\n",
						rec.Method, ds.Name, float64(rec.NsPerOp)/1e6, rec.Runs, rec.Answers)
				}
				continue
			}
			rec, err := benchOne(method, ds, s, parallelism)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", method, profile, err)
			}
			rec.Profile = ds.Name
			rec.Scale = s.DataScale
			report.Results = append(report.Results, rec)
			fmt.Printf("%-10s %-8s %9.1f ms/op %10d allocs/op  P=%.3f R=%.3f\n",
				method, ds.Name, float64(rec.NsPerOp)/1e6, rec.AllocsPerOp, rec.Precision, rec.Recall)
		}
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
	if baselinePath != "" {
		return checkBaseline(&report, baselinePath, maxRegress)
	}
	return nil
}

// benchOne times s.Runs full aggregations of ds with the given method and
// evaluates the (deterministic) consensus of the last run. ns_per_op is
// the best (minimum) run: the computation is deterministic, so the minimum
// estimates the true cost with scheduler and neighbour noise filtered out,
// which is what makes the -baseline regression gate stable at quick scale.
func benchOne(method string, ds *answers.Dataset, s experiments.Settings, parallelism int) (BenchRecord, error) {
	agg, err := benchAggregator(method, s.Seed, parallelism)
	if err != nil {
		return BenchRecord{}, err
	}
	var minNs, totalAllocs, totalBytes int64
	var ms runtime.MemStats
	var pred []labelset.Set
	for run := 0; run < s.Runs; run++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startAllocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		pred, err = agg.Aggregate(ds)
		if err != nil {
			return BenchRecord{}, err
		}
		if ns := time.Since(start).Nanoseconds(); run == 0 || ns < minNs {
			minNs = ns
		}
		runtime.ReadMemStats(&ms)
		totalAllocs += int64(ms.Mallocs - startAllocs)
		totalBytes += int64(ms.TotalAlloc - startBytes)
	}

	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		return BenchRecord{}, err
	}
	return BenchRecord{
		Method:      method,
		Runs:        s.Runs,
		Items:       ds.NumItems,
		Workers:     ds.NumWorkers,
		Labels:      ds.NumLabels,
		Answers:     ds.NumAnswers(),
		NsPerOp:     minNs,
		AllocsPerOp: totalAllocs / int64(s.Runs),
		BytesPerOp:  totalBytes / int64(s.Runs),
		Precision:   pr.Precision,
		Recall:      pr.Recall,
		F1:          pr.F1(),
	}, nil
}

// benchPublish measures the serving layer's per-round snapshot publication
// in the fitter's shape — PartialFit a mini-batch, publish — at 1× and 10×
// the profile's stream length. ns_per_op is the best publish call
// alone over the final rounds at the target length; a flat trajectory
// across the two points is the O(batch) publication property the snapshot
// engine guarantees (DESIGN.md §8). The publish-full rows measure the
// caught-up full finalize pipeline at the same lengths for comparison
// (O(stream) by construction).
func benchPublish(ds *answers.Dataset, s experiments.Settings, parallelism int) ([]BenchRecord, error) {
	const steadyRounds = 16
	var out []BenchRecord
	for _, mul := range []int{1, 10} {
		model, err := core.NewModel(core.Config{Seed: s.Seed, Parallelism: parallelism},
			ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			return nil, err
		}
		batchSize := model.Config().BatchSize
		pub := core.NewPublisher(model)
		all := ds.Answers()
		total := len(all) * mul
		// Measure only the trailing rounds at the target length, and never
		// round 1: the cold publisher publishes the full pipeline there, so
		// folding it into a short stream's mean would make the 1× point
		// incomparable with the 10× one.
		roundsPerRep := (len(all) + batchSize - 1) / batchSize
		totalRounds := roundsPerRep * mul
		window := steadyRounds
		if window > totalRounds-1 {
			window = totalRounds - 1
		}
		if window < 1 {
			return nil, fmt.Errorf("stream too short for publish bench (%d answers, %d rounds)", total, totalRounds)
		}
		// Like benchOne, ns_per_op is the best tail round — per-round
		// publish work at the target stream length is deterministic, so the
		// minimum filters the noise that makes a small tail-window mean
		// flap through the regression gate. Runt final batches are excluded
		// from the sample (publish cost is O(dirty) = O(batch), so the runt
		// would systematically be the cheapest round, not a representative
		// one); they still run to keep the stream shape intact.
		hasFull := len(all) >= batchSize
		var tailMinNs int64
		tailRounds, round := 0, 0
		for rep := 0; rep < mul; rep++ {
			for start := 0; start < len(all); start += batchSize {
				end := start + batchSize
				if end > len(all) {
					end = len(all)
				}
				if err := model.PartialFit(all[start:end]); err != nil {
					return nil, err
				}
				begin := time.Now()
				if _, _, err := pub.Publish(false); err != nil {
					return nil, err
				}
				d := time.Since(begin).Nanoseconds()
				round++
				if round > totalRounds-window && (end-start == batchSize || !hasFull) {
					if tailRounds == 0 || d < tailMinNs {
						tailMinNs = d
					}
					tailRounds++
				}
			}
		}
		if tailRounds == 0 {
			return nil, fmt.Errorf("publish tail window sampled no full rounds (%d answers, batch %d)", total, batchSize)
		}
		dims := BenchRecord{
			Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels, Answers: total,
		}
		inc := dims
		inc.Method = fmt.Sprintf("publish-%dx", mul)
		inc.Runs = tailRounds
		inc.NsPerOp = tailMinNs
		out = append(out, inc)

		const fullRuns = 3
		var fullMinNs int64
		for k := 0; k < fullRuns; k++ {
			begin := time.Now()
			if _, _, err := pub.Publish(true); err != nil {
				return nil, err
			}
			if ns := time.Since(begin).Nanoseconds(); k == 0 || ns < fullMinNs {
				fullMinNs = ns
			}
		}
		full := dims
		full.Method = fmt.Sprintf("publish-full-%dx", mul)
		full.Runs = fullRuns
		full.NsPerOp = fullMinNs
		out = append(out, full)
	}
	return out, nil
}

// benchKernels times the inference hot loops in isolation — exactly the
// paths the label-set score-panel engine accelerates — with no prediction
// stage, so the rows move only when the kernels do:
//
//	kernels-fit       one batch Fit (Algorithm 1) per op
//	kernels-stream    one single-pass FitStream (Algorithm 2) per op
//	kernels-round     best full-size tail-round PartialFit latency
//	kernels-finalize  one FinalizeOnline pass on the streamed model per op
func benchKernels(ds *answers.Dataset, s experiments.Settings, parallelism int) ([]BenchRecord, error) {
	dims := BenchRecord{
		Runs: s.Runs, Items: ds.NumItems, Workers: ds.NumWorkers,
		Labels: ds.NumLabels, Answers: ds.NumAnswers(),
	}
	cfg := core.Config{Seed: s.Seed, Parallelism: parallelism}

	// ns_per_op is the best (minimum) run, like benchOne: deterministic
	// work plus noise, so the minimum is the stable estimator the
	// regression gate needs.
	timed := func(method string, runs int, op func() error) (BenchRecord, error) {
		var ms runtime.MemStats
		var minNs, totalAllocs, totalBytes int64
		for r := 0; r < runs; r++ {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			startAllocs, startBytes := ms.Mallocs, ms.TotalAlloc
			start := time.Now()
			if err := op(); err != nil {
				return BenchRecord{}, err
			}
			if ns := time.Since(start).Nanoseconds(); r == 0 || ns < minNs {
				minNs = ns
			}
			runtime.ReadMemStats(&ms)
			totalAllocs += int64(ms.Mallocs - startAllocs)
			totalBytes += int64(ms.TotalAlloc - startBytes)
		}
		rec := dims
		rec.Method = method
		rec.Runs = runs
		rec.NsPerOp = minNs
		rec.AllocsPerOp = totalAllocs / int64(runs)
		rec.BytesPerOp = totalBytes / int64(runs)
		return rec, nil
	}

	var out []BenchRecord
	rec, err := timed("kernels-fit", s.Runs, func() error {
		m, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			return err
		}
		_, err = m.Fit(ds)
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rec)

	rec, err = timed("kernels-stream", s.Runs, func() error {
		m, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			return err
		}
		_, err = m.FitStream(ds)
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rec)

	// Per-round PartialFit latency plus the finalize pass, on one streamed
	// model.
	m, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		return nil, err
	}
	// Per-round latency: rounds are NOT identical ops (cost grows with the
	// accumulated state a round's items drag in, and the final round is a
	// runt batch), so the row is the best round within the trailing window
	// of full-size rounds — steady-state cost at the stream's length, with
	// noise filtered, never the runt.
	all := ds.Answers()
	batchSize := m.Config().BatchSize
	fullRounds := len(all) / batchSize
	window := 8
	if window > fullRounds {
		window = fullRounds
	}
	var roundMinNs int64
	sampled, fullRound := 0, 0
	for start := 0; start < len(all); start += batchSize {
		end := start + batchSize
		if end > len(all) {
			end = len(all)
		}
		begin := time.Now()
		if err := m.PartialFit(all[start:end]); err != nil {
			return nil, err
		}
		ns := time.Since(begin).Nanoseconds()
		if end-start == batchSize {
			fullRound++
			if fullRound > fullRounds-window {
				if sampled == 0 || ns < roundMinNs {
					roundMinNs = ns
				}
				sampled++
			}
		} else if fullRounds == 0 {
			// Stream smaller than one batch: the runt is all there is.
			if sampled == 0 || ns < roundMinNs {
				roundMinNs = ns
			}
			sampled++
		}
	}
	round := dims
	round.Method = "kernels-round"
	round.Runs = sampled
	round.NsPerOp = roundMinNs
	out = append(out, round)

	fin, err := timed("kernels-finalize", s.Runs, func() error {
		m.FinalizeOnline()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, fin)
	return out, nil
}

// benchMicroKernels times the dispatched mathx kernels in isolation, per
// registered backend and per length — the same shapes as the
// internal/mathx Benchmark* micro-benchmarks, folded into the BENCH json
// envelope so kernel-level wins and regressions are tracked alongside the
// end-to-end rows. Rows are ns per single kernel call (method
// "micro-<kernel>", profile "<backend>/n<len>"); they sit far below the
// regression gate's floor, so they are informational in the gate but
// refreshed in bench_baseline.json with every intentional perf shift.
func benchMicroKernels() []BenchRecord {
	restore := mathx.ActiveBackend()
	defer mathx.ForceBackend(restore)

	lens := []int{4, 16, 64, 256, 4096}
	rng := func(seed int64, n int, lo, span float64) []float64 {
		r := newDetRand(seed)
		v := make([]float64, n)
		for i := range v {
			v[i] = lo + span*r()
		}
		return v
	}

	var out []BenchRecord
	var sink float64
	for _, backend := range mathx.Backends() {
		if err := mathx.ForceBackend(backend); err != nil {
			continue
		}
		for _, n := range lens {
			iters := 1 + 1<<17/(n+16) // ~constant total work per row
			w := rng(3, n, -1, 2)
			x := rng(4, n, -1, 2)
			y := rng(5, n, -1, 2)
			pos := rng(6, n, 0.1, 20)
			logs := rng(7, n, -40, 40)
			dst := make([]float64, n)
			profile := fmt.Sprintf("%s/n%d", backend, n)
			for _, k := range []struct {
				kernel string
				op     func()
			}{
				{"micro-axpy", func() { mathx.Axpy(1.0009765625, x, y) }},
				{"micro-flooreddot", func() { sink += mathx.FlooredDot(w, x, 0.0) }},
				{"micro-sum", func() { sink += mathx.Sum(w) }},
				{"micro-digammarow", func() { mathx.DigammaRow(pos, dst) }},
				{"micro-logsumexp", func() { sink += mathx.LogSumExp(logs) }},
			} {
				out = append(out, BenchRecord{
					Method:  k.kernel,
					Profile: profile,
					Runs:    iters,
					NsPerOp: sampleMinNs(iters, k.op),
				})
			}
		}
	}
	_ = sink
	return out
}

// sampleMinNs is the min-of-reps estimator every micro row uses: each of 5
// samples times a batched inner loop of iters calls and divides, and the row
// reports the best sample — single calls are nanoseconds-to-microseconds, so
// batching beats timer granularity and the minimum filters scheduler noise.
func sampleMinNs(iters int, op func()) int64 {
	const reps = 5
	var minNs int64
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		ns := time.Since(start).Nanoseconds() / int64(iters)
		if rep == 0 || ns < minNs {
			minNs = ns
		}
	}
	return minNs
}

// benchIngest times the ingestion hot path in isolation, independent of any
// dataset. Codec rows pit the hand-rolled NDJSON codec (serve.DecodeNDJSON /
// serve.EncodeAnswerLines, profiles hand/nN) against the encoding/json
// composition it is pinned byte-equal to (profiles stdlib/nN); one op is one
// whole N-record body. Append rows push N-record batches through a live
// journaled job whose fitter is parked, serial (c1/nN) and with 8 concurrent
// appenders (c8/nN); one op is one batch made durable, measured as wall
// clock over all batches so the c8 rows reflect the group-commit leader
// coalescing cohorts into one write+flush rather than per-caller latency.
// Like the microkernel rows these sit below the regression gate's floor, so
// they are informational in the gate but refreshed in bench_baseline.json
// with every intentional perf shift.
func benchIngest() ([]BenchRecord, error) {
	const (
		nItems   = 4096
		nWorkers = 512
		nLabels  = 64
	)
	r := newDetRand(11)
	randBatch := func(n int) []answers.Answer {
		batch := make([]answers.Answer, n)
		for i := range batch {
			var ls labelset.Set
			k := 1 + int(3*r())
			for j := 0; j < k; j++ {
				ls.Add(int(float64(nLabels) * r()))
			}
			batch[i] = answers.Answer{Item: int(float64(nItems) * r()), Worker: int(float64(nWorkers) * r()), Labels: ls}
		}
		return batch
	}
	var out []BenchRecord
	row := func(method, profile string, n, runs int, ns int64) {
		out = append(out, BenchRecord{
			Method: method, Profile: profile, Runs: runs,
			Items: nItems, Workers: nWorkers, Labels: nLabels, Answers: n,
			NsPerOp: ns,
		})
	}
	discard := func(answers.Answer) error { return nil }

	// jline mirrors the op=ans journal-line shape so the stdlib encode row
	// is the composition the hand encoder is pinned byte-equal to.
	type jline struct {
		Op string             `json:"op"`
		A  answers.JSONAnswer `json:"a"`
	}
	for _, n := range []int{16, 256, 4096} {
		batch := randBatch(n)
		// Decode rows read the HTTP wire form: bare one-answer-per-line
		// NDJSON, as POST /answers receives it.
		var body []byte
		for _, a := range batch {
			line, err := answers.MarshalAnswerJSON(a)
			if err != nil {
				return nil, err
			}
			body = append(append(body, line...), '\n')
		}
		if err := serve.DecodeNDJSON(body, nil, discard); err != nil {
			return nil, fmt.Errorf("decode self-check at n=%d: %w", n, err)
		}
		iters := 1 + 1<<13/n // ~constant total records per row
		row("ingest-decode", fmt.Sprintf("hand/n%d", n), n, iters, sampleMinNs(iters, func() {
			// Fresh arena per op, as the HTTP handler uses per request.
			var arena labelset.Arena
			_ = serve.DecodeNDJSON(body, &arena, discard)
		}))
		// Encode rows build the journal form of the whole batch — the encode
		// the ingestion hot path performs before appending.
		var buf []byte
		row("ingest-encode", fmt.Sprintf("hand/n%d", n), n, iters, sampleMinNs(iters, func() {
			buf = serve.EncodeAnswerLines(buf[:0], batch)
		}))
		row("ingest-decode", fmt.Sprintf("stdlib/n%d", n), n, iters, sampleMinNs(iters, func() {
			_ = answers.DecodeJSONL(bytes.NewReader(body), discard)
		}))
		row("ingest-encode", fmt.Sprintf("stdlib/n%d", n), n, iters, sampleMinNs(iters, func() {
			var sb []byte
			for _, a := range batch {
				line, _ := json.Marshal(jline{Op: "ans", A: answers.ToJSON(a)})
				sb = append(append(sb, line...), '\n')
			}
		}))
	}

	// Append rows run against a real journaled job with the fitter parked
	// (BatchWait far beyond the bench horizon, mini-batch far beyond the
	// ingested volume), so an op is journal append + durability wait + queue
	// admission and nothing else.
	dir, err := os.MkdirTemp("", "cpabench-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	reg, err := serve.Open(serve.Config{Dir: dir, QueueLimit: 1 << 21, BatchWait: time.Hour})
	if err != nil {
		return nil, err
	}
	defer reg.Close()
	for _, n := range []int{16, 256} {
		batch := randBatch(n)
		job, err := reg.Create(serve.JobSpec{
			ID: fmt.Sprintf("bench-ingest-n%d", n), Items: nItems, Workers: nWorkers, Labels: nLabels,
			Model: core.Config{Seed: 1, BatchSize: 1 << 19},
		})
		if err != nil {
			return nil, err
		}
		iters := 1 + 1<<11/n
		var ingErr error
		ns := sampleMinNs(iters, func() {
			if err := job.Ingest(batch); err != nil && ingErr == nil {
				ingErr = err
			}
		})
		if ingErr != nil {
			return nil, fmt.Errorf("serial append at n=%d: %w", n, ingErr)
		}
		row("ingest-append", fmt.Sprintf("c1/n%d", n), n, iters, ns)

		const conc = 8
		perG := iters/conc + 1
		var minNs int64
		var gcErr error
		var errMu sync.Mutex
		for rep := 0; rep < 5; rep++ {
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < perG; b++ {
						if err := job.Ingest(batch); err != nil {
							errMu.Lock()
							if gcErr == nil {
								gcErr = err
							}
							errMu.Unlock()
							return
						}
					}
				}()
			}
			wg.Wait()
			ns := time.Since(start).Nanoseconds() / int64(conc*perG)
			if rep == 0 || ns < minNs {
				minNs = ns
			}
		}
		if gcErr != nil {
			return nil, fmt.Errorf("group-commit append at n=%d: %w", n, gcErr)
		}
		row("ingest-group-commit", fmt.Sprintf("c%d/n%d", conc, n), n, conc*perG, minNs)
	}
	return out, nil
}

// newDetRand is a tiny deterministic generator (SplitMix64-derived) for the
// microkernel inputs — fixed inputs keep rows comparable across runs
// without dragging math/rand's global state into the report.
func newDetRand(seed int64) func() float64 {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	return func() float64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}

// benchAggregator mirrors cpacli's method table for the perf sweep.
func benchAggregator(name string, seed int64, parallelism int) (baselines.Aggregator, error) {
	cfg := core.Config{Seed: seed, Parallelism: parallelism}
	switch name {
	case "cpa":
		return core.NewAggregator(cfg), nil
	case "cpa-online":
		return core.NewOnlineAggregator(cfg), nil
	case "noz":
		return core.NewNoZAggregator(cfg), nil
	case "nol":
		return core.NewNoLAggregator(cfg), nil
	case "mv":
		return baselines.NewMajorityVote(), nil
	case "em":
		return baselines.NewDawidSkene(), nil
	case "bcc":
		return baselines.NewBCC(), nil
	case "cbcc":
		return baselines.NewCBCC(), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
