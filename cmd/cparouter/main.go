// Command cparouter fronts a sharded cpaserve cluster: it places jobs on
// shards by rendezvous hashing, proxies ingestion to shard primaries with
// ownership-epoch stamps and a replication ack barrier, routes consensus
// reads to the primary or any verified-caught-up follower, and runs
// failover and planned handoff (internal/cluster; DESIGN.md §11).
//
// Usage (1 router, 2 shards × 2 replicas over 4 nodes):
//
//	cpanode -name a -addr :8081 -data ./node-a &
//	cpanode -name b -addr :8082 -data ./node-b &
//	cpanode -name c -addr :8083 -data ./node-c &
//	cpanode -name d -addr :8084 -data ./node-d &
//	cparouter -addr :8080 \
//	  -node a=http://localhost:8081 -node b=http://localhost:8082 \
//	  -node c=http://localhost:8083 -node d=http://localhost:8084 \
//	  -shard a,b -shard c,d
//
// Clients then talk to the router exactly as they would to a single
// cpaserve. GET /clusterz shows the map; POST /v1/cluster/handoff
// {"job":"tags","to":"b"} transfers ownership live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cpa/internal/cluster"
)

func main() {
	spec := cluster.MapSpec{Nodes: map[string]string{}}
	addr := flag.String("addr", ":8080", "HTTP listen address")
	flag.Func("node", "cluster node as name=url (repeatable)", func(v string) error {
		name, url, ok := strings.Cut(v, "=")
		if !ok || name == "" || url == "" {
			return fmt.Errorf("want name=url, got %q", v)
		}
		spec.Nodes[name] = strings.TrimRight(url, "/")
		return nil
	})
	flag.Func("shard", "shard replica set as primary[,follower...] (repeatable)", func(v string) error {
		parts := strings.Split(v, ",")
		sh := cluster.ShardSpec{Primary: strings.TrimSpace(parts[0])}
		for _, f := range parts[1:] {
			if f = strings.TrimSpace(f); f != "" {
				sh.Followers = append(sh.Followers, f)
			}
		}
		if sh.Primary == "" {
			return fmt.Errorf("shard needs a primary, got %q", v)
		}
		spec.Shards = append(spec.Shards, sh)
		return nil
	})
	flag.Parse()

	rt, err := cluster.NewRouter(spec)
	if err != nil {
		log.Fatalf("cparouter: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("cparouter: serving on %s (%d nodes, %d shards)", *addr, len(spec.Nodes), len(spec.Shards))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("cparouter: %s, shutting down", sig)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cparouter: serve error: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("cparouter: HTTP shutdown: %v", err)
	}
	log.Printf("cparouter: clean shutdown")
}
