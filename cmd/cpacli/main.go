// Command cpacli aggregates crowd answers from a JSON or CSV dataset file
// and prints the consensus label set per item. When the input carries ground
// truth it also reports precision/recall.
//
// Usage:
//
//	cpacli -in answers.json -method cpa
//	cpacli -in answers.csv -format csv -method cbcc -out consensus.csv
//
// Methods: cpa (batch VI), cpa-online (streaming SVI), mv, em, bcc, cbcc,
// noz, nol.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/metrics"
)

func main() {
	var (
		in     = flag.String("in", "", "input dataset file (required; '-' for stdin)")
		format = flag.String("format", "json", "input format: json or csv")
		method = flag.String("method", "cpa", "aggregation method: cpa, cpa-online, mv, em, bcc, cbcc, noz, nol")
		out    = flag.String("out", "", "write consensus CSV here instead of stdout")
		seed   = flag.Int64("seed", 1, "random seed for the model")
		par    = flag.Int("parallelism", 0, "map-reduce shards for the CPA methods (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "cpacli: %v\n", err)
		os.Exit(1)
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in"))
	}

	var reader io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reader = f
	}
	var ds *answers.Dataset
	var err error
	switch *format {
	case "json":
		ds, err = answers.ReadJSON(reader)
	case "csv":
		ds, err = answers.ReadCSV("input", reader)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}

	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}
	agg, err := pickMethod(*method, *seed, *par)
	if err != nil {
		fatal(err)
	}
	pred, err := agg.Aggregate(ds)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"item", "consensus"}); err != nil {
		fatal(err)
	}
	for i, s := range pred {
		members := s.Slice()
		parts := make([]string, len(members))
		for j, c := range members {
			parts[j] = strconv.Itoa(c)
		}
		if err := cw.Write([]string{strconv.Itoa(i), strings.Join(parts, ";")}); err != nil {
			fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}

	if ds.TruthCount() > 0 {
		pr, err := metrics.Evaluate(ds, pred)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cpacli: %s on %d items: precision %.3f, recall %.3f, F1 %.3f (truth on %d items)\n",
			agg.Name(), ds.NumItems, pr.Precision, pr.Recall, pr.F1(), pr.Items)
	}
}

func pickMethod(name string, seed int64, parallelism int) (baselines.Aggregator, error) {
	cfg := core.Config{Seed: seed, Parallelism: parallelism}
	switch name {
	case "cpa":
		return core.NewAggregator(cfg), nil
	case "cpa-online":
		return core.NewOnlineAggregator(cfg), nil
	case "noz":
		return core.NewNoZAggregator(cfg), nil
	case "nol":
		return core.NewNoLAggregator(cfg), nil
	case "mv":
		return baselines.NewMajorityVote(), nil
	case "em":
		return baselines.NewDawidSkene(), nil
	case "bcc":
		return baselines.NewBCC(), nil
	case "cbcc":
		return baselines.NewCBCC(), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
