// Command cpanode runs one member of a sharded cpaserve cluster: the full
// cpaserve HTTP API for the jobs it owns as primary, plus the replication
// control surface a cparouter drives — journal-shipping follower replicas,
// replica promotion, and per-job replication stats (internal/cluster;
// DESIGN.md §11).
//
// Usage:
//
//	cpanode -name a -addr :8081 -data ./node-a
//
// A node is a superset of cpaserve: pointing clients straight at it works,
// but in a cluster the router is the front door (it stamps ownership
// epochs and enforces the replication ack barrier).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpa/internal/cluster"
	"cpa/internal/serve"
)

func main() {
	var (
		name      = flag.String("name", "node", "cluster node name (must match the router's roster)")
		addr      = flag.String("addr", ":8081", "HTTP listen address")
		data      = flag.String("data", "cpanode-data", "data directory for journals, checkpoints and replica staging")
		queue     = flag.Int("queue", 0, "per-job ingestion queue limit (0 = default 65536)")
		saveEvery = flag.Int("save-every", 0, "checkpoint the model every N fit rounds (0 = default 16)")
		batchWait = flag.Duration("batch-wait", 0, "max wait for a mini-batch to fill before fitting a partial one (0 = default 100ms)")
		syncJrnl  = flag.Bool("sync-journal", false, "fsync the journal after every ingested batch")
		truncate  = flag.Bool("truncate-journal", false, "drop the journal prefix behind each durable checkpoint (bounded disk for long-lived jobs)")
		truncMin  = flag.Int64("truncate-min", 0, "minimum droppable prefix in bytes before a truncation fires (0 = default 64KiB)")
		autoTune  = flag.Bool("auto-tune", false, "steer each owned job's Parallelism and mini-batch size toward the measured USL knee (DESIGN.md §13; tune annotations replicate as journal no-ops)")
		tuneWin   = flag.Int("auto-tune-window", 0, "fit rounds per auto-tune measurement window (0 = default 8)")
		tuneMaxP  = flag.Int("auto-tune-max-par", 0, "auto-tune Parallelism ladder cap (0 = default GOMAXPROCS)")
	)
	flag.Parse()

	node, err := cluster.NewNode(*name, *data, serve.Config{
		QueueLimit:             *queue,
		SaveEvery:              *saveEvery,
		BatchWait:              *batchWait,
		SyncJournal:            *syncJrnl,
		TruncateJournal:        *truncate,
		TruncateMin:            *truncMin,
		AutoTune:               *autoTune,
		AutoTuneWindow:         *tuneWin,
		AutoTuneMaxParallelism: *tuneMaxP,
	})
	if err != nil {
		log.Fatalf("cpanode: %v", err)
	}
	if n := len(node.Registry().Jobs()); n > 0 {
		log.Printf("cpanode %s: recovered %d job(s) from %q", *name, n, *data)
	}

	srv := &http.Server{Addr: *addr, Handler: node}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("cpanode %s: serving on %s (data: %q)", *name, *addr, *data)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("cpanode %s: %s, shutting down", *name, sig)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cpanode %s: serve error: %v", *name, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("cpanode %s: HTTP shutdown: %v", *name, err)
	}
	if err := node.Close(); err != nil {
		log.Fatalf("cpanode %s: closing node: %v", *name, err)
	}
	log.Printf("cpanode %s: clean shutdown", *name)
}
